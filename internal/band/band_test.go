package band

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sdtw/internal/dtw"
	"sdtw/internal/match"
	"sdtw/internal/sift"
)

// alignmentWith builds an alignment with the given corresponding
// boundaries over an nx-by-ny grid.
func alignmentWith(nx, ny int, bx, by []int) *match.Alignment {
	return &match.Alignment{NX: nx, NY: ny, BoundsX: bx, BoundsY: by}
}

func TestStrategyStrings(t *testing.T) {
	tests := []struct {
		s    Strategy
		want string
	}{
		{FullGrid, "dtw"},
		{FixedCoreFixedWidth, "fc,fw"},
		{FixedCoreAdaptiveWidth, "fc,aw"},
		{AdaptiveCoreFixedWidth, "ac,fw"},
		{AdaptiveCoreAdaptiveWidth, "ac,aw"},
		{AdaptiveCoreAdaptiveWidthAvg, "ac2,aw"},
		{ItakuraBand, "itakura"},
	}
	for _, tc := range tests {
		if got := tc.s.String(); got != tc.want {
			t.Errorf("%d.String() = %q, want %q", tc.s, got, tc.want)
		}
	}
}

func TestStrategyClassification(t *testing.T) {
	if FixedCoreFixedWidth.AdaptiveCore() || FixedCoreAdaptiveWidth.AdaptiveCore() {
		t.Error("fixed cores misclassified")
	}
	if !AdaptiveCoreFixedWidth.AdaptiveCore() || !AdaptiveCoreAdaptiveWidth.AdaptiveCore() || !AdaptiveCoreAdaptiveWidthAvg.AdaptiveCore() {
		t.Error("adaptive cores misclassified")
	}
	if FixedCoreFixedWidth.AdaptiveWidth() || AdaptiveCoreFixedWidth.AdaptiveWidth() {
		t.Error("fixed widths misclassified")
	}
	if !FixedCoreAdaptiveWidth.AdaptiveWidth() || !AdaptiveCoreAdaptiveWidth.AdaptiveWidth() {
		t.Error("adaptive widths misclassified")
	}
}

func TestBuildFullGrid(t *testing.T) {
	al := alignmentWith(10, 12, nil, nil)
	b, err := Build(al, Config{Strategy: FullGrid})
	if err != nil {
		t.Fatal(err)
	}
	if b.Cells() != 120 {
		t.Fatalf("full grid cells = %d, want 120", b.Cells())
	}
}

func TestBuildSakoe(t *testing.T) {
	al := alignmentWith(50, 50, nil, nil)
	b, err := Build(al, Config{Strategy: FixedCoreFixedWidth, WidthFrac: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	want := dtw.SakoeChiba(50, 50, 0.1)
	for i := range b.Lo {
		if b.Lo[i] != want.Lo[i] || b.Hi[i] != want.Hi[i] {
			t.Fatalf("row %d: [%d,%d] vs Sakoe [%d,%d]", i, b.Lo[i], b.Hi[i], want.Lo[i], want.Hi[i])
		}
	}
}

func TestBuildItakura(t *testing.T) {
	al := alignmentWith(40, 40, nil, nil)
	b, err := Build(al, Config{Strategy: ItakuraBand})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildAdaptiveRequiresAlignment(t *testing.T) {
	if _, err := Build(nil, Config{Strategy: AdaptiveCoreFixedWidth}); err == nil {
		t.Fatal("nil alignment accepted for adaptive strategy")
	}
	// Fixed strategies still need grid dimensions, which a nil alignment
	// cannot supply: Build must error, not panic.
	if _, err := Build(nil, Config{Strategy: FixedCoreFixedWidth}); err == nil {
		t.Fatal("nil alignment accepted for fixed strategy")
	}
	if _, err := Build(alignmentWith(0, 10, nil, nil), Config{Strategy: FullGrid}); err == nil {
		t.Fatal("zero-dimension alignment accepted")
	}
}

func TestAdaptiveCoreFollowsBoundaries(t *testing.T) {
	// One boundary pair at (50, 20) on a 100x100 grid: the core runs
	// from (0,0) to (50,20) then to (99,99).
	al := alignmentWith(100, 100, []int{50}, []int{20})
	b, err := Build(al, Config{Strategy: AdaptiveCoreFixedWidth, WidthFrac: 0.08})
	if err != nil {
		t.Fatal(err)
	}
	// At i=50 the band must cover j=20 and not j=50 (diagonal).
	if !b.Contains(50, 20) {
		t.Fatalf("band misses boundary-implied core (50,20): [%d,%d]", b.Lo[50], b.Hi[50])
	}
	if b.Contains(50, 50) {
		t.Fatalf("band still follows diagonal at row 50: [%d,%d]", b.Lo[50], b.Hi[50])
	}
	// Midway through the first interval: core ≈ (25, 10).
	if !b.Contains(25, 10) {
		t.Fatalf("interpolated core not covered at (25,10): [%d,%d]", b.Lo[25], b.Hi[25])
	}
}

func TestFixedCoreIgnoresBoundaries(t *testing.T) {
	al := alignmentWith(100, 100, []int{50}, []int{20})
	b, err := Build(al, Config{Strategy: FixedCoreFixedWidth, WidthFrac: 0.08})
	if err != nil {
		t.Fatal(err)
	}
	if !b.Contains(50, 50) {
		t.Fatal("fixed core left the diagonal")
	}
}

func TestAdaptiveWidthTracksIntervalSizes(t *testing.T) {
	// X intervals: [0,30],[30,99]; Y intervals: [0,10],[10,99].
	// Rows in the first interval get width ~11, rows in the second ~90.
	al := alignmentWith(100, 100, []int{30}, []int{10})
	b, err := Build(al, Config{Strategy: AdaptiveCoreAdaptiveWidth, MinWidthFrac: -1})
	if err != nil {
		t.Fatal(err)
	}
	wFirst := b.Hi[15] - b.Lo[15] + 1
	wSecond := b.Hi[60] - b.Lo[60] + 1
	if wFirst >= wSecond {
		t.Fatalf("adaptive width not tracking intervals: %d vs %d", wFirst, wSecond)
	}
	if wFirst > 25 {
		t.Fatalf("narrow interval width = %d, want ≈11", wFirst)
	}
}

func TestAdaptiveWidthNeighbourAveraging(t *testing.T) {
	// With averaging, the width in a tiny interval is pulled up by its
	// large neighbours.
	al := alignmentWith(200, 200, []int{80, 90}, []int{80, 84})
	plain, err := Build(al, Config{Strategy: AdaptiveCoreAdaptiveWidth, MinWidthFrac: -1})
	if err != nil {
		t.Fatal(err)
	}
	avg, err := Build(al, Config{Strategy: AdaptiveCoreAdaptiveWidthAvg, MinWidthFrac: -1})
	if err != nil {
		t.Fatal(err)
	}
	// Row 85 lies in the tiny middle interval (Y length 5).
	wPlain := plain.Hi[85] - plain.Lo[85] + 1
	wAvg := avg.Hi[85] - avg.Lo[85] + 1
	if wAvg <= wPlain {
		t.Fatalf("averaging did not widen tiny interval: %d vs %d", wAvg, wPlain)
	}
}

func TestMinMaxWidthBounds(t *testing.T) {
	al := alignmentWith(100, 100, []int{30}, []int{10})
	b, err := Build(al, Config{Strategy: AdaptiveCoreAdaptiveWidth, MinWidthFrac: 0.30})
	if err != nil {
		t.Fatal(err)
	}
	// Interior rows must have width >= 30 (boundary rows are clamped by
	// the grid edge).
	w := b.Hi[15] - b.Lo[15] + 1
	if w < 16 { // half-width 15 on each side minus clamping at j=0
		t.Fatalf("min width ignored: row 15 spans %d", w)
	}
	b2, err := Build(al, Config{Strategy: AdaptiveCoreAdaptiveWidth, MinWidthFrac: -1, MaxWidthFrac: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 5; i < 95; i++ {
		if w := b2.Hi[i] - b2.Lo[i] + 1; w > 23 {
			t.Fatalf("max width ignored: row %d spans %d", i, w)
		}
	}
}

func TestFcAwDefaultLowerBound(t *testing.T) {
	// §4.3: (fc,aw) runs used a 20% lower bound by default.
	al := alignmentWith(100, 100, []int{30}, []int{10})
	b, err := Build(al, Config{Strategy: FixedCoreAdaptiveWidth})
	if err != nil {
		t.Fatal(err)
	}
	w := b.Hi[50] - b.Lo[50] + 1
	if w < 20 {
		t.Fatalf("(fc,aw) default 20%% lower bound missing: width %d", w)
	}
}

func TestEmptyYIntervalMapsToConstant(t *testing.T) {
	// Boundaries (40,50) and (60,50): the second X interval maps onto an
	// empty Y interval; all its candidate points are st(Y,E)=50.
	al := alignmentWith(100, 100, []int{40, 60}, []int{50, 50})
	b, err := Build(al, Config{Strategy: AdaptiveCoreFixedWidth, WidthFrac: 0.06})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if !b.Contains(50, 50) {
		t.Fatalf("empty-interval rows do not target the constant candidate")
	}
}

func TestEmptyXIntervalGapBridged(t *testing.T) {
	// Boundaries (50,30) and (50,70): an empty X interval jumps the core
	// vertically; Normalize must bridge so DP still completes.
	al := alignmentWith(100, 100, []int{50, 50}, []int{30, 70})
	b, err := Build(al, Config{Strategy: AdaptiveCoreFixedWidth, WidthFrac: 0.06})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 100)
	y := make([]float64, 100)
	d, _, err := dtw.Banded(x, y, b, nil)
	if err != nil || math.IsInf(d, 1) {
		t.Fatalf("gap not bridged: %v %v", d, err)
	}
}

func TestSymmetricBandIsUnion(t *testing.T) {
	al := alignmentWith(80, 120, []int{30}, []int{70})
	asym, err := Build(al, Config{Strategy: AdaptiveCoreAdaptiveWidth, MinWidthFrac: -1})
	if err != nil {
		t.Fatal(err)
	}
	sym, err := Build(al, Config{Strategy: AdaptiveCoreAdaptiveWidth, MinWidthFrac: -1, Symmetric: true})
	if err != nil {
		t.Fatal(err)
	}
	if sym.Cells() < asym.Cells() {
		t.Fatalf("symmetric band smaller than asymmetric: %d vs %d", sym.Cells(), asym.Cells())
	}
	for i := range asym.Lo {
		if sym.Lo[i] > asym.Lo[i] || sym.Hi[i] < asym.Hi[i] {
			t.Fatalf("symmetric band does not contain asymmetric at row %d", i)
		}
	}
}

func TestSymmetricDistanceIsSymmetric(t *testing.T) {
	// End-to-end check through real features: with Symmetric bands the
	// constrained distance must not depend on argument order.
	rng := rand.New(rand.NewSource(21))
	mk := func() []float64 {
		v := make([]float64, 120)
		for i := range v {
			v[i] = math.Sin(float64(i)/9) + 0.2*rng.NormFloat64()
		}
		return v
	}
	x, y := mk(), mk()
	fx, err := sift.Extract(x, sift.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	fy, err := sift.Extract(y, sift.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Strategy: AdaptiveCoreAdaptiveWidth, Symmetric: true}
	alXY, err := match.Match(fx, fy, len(x), len(y), match.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	alYX, err := match.Match(fy, fx, len(y), len(x), match.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	bXY, err := Build(alXY, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bYX, err := Build(alYX, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dXY, _, err := dtw.Banded(x, y, bXY, nil)
	if err != nil {
		t.Fatal(err)
	}
	dYX, _, err := dtw.Banded(y, x, bYX, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Note: matching itself is direction-dependent (X drives the search),
	// so exact symmetry requires matched alignments; with mutual-best
	// matching the two directions converge to the same pair set, making
	// the symmetric distances equal in practice.
	if math.Abs(dXY-dYX) > 1e-6*(1+math.Abs(dXY)) {
		t.Logf("symmetric distances differ: %v vs %v (alignments %d vs %d pairs)",
			dXY, dYX, len(alXY.Pairs), len(alYX.Pairs))
	}
}

func TestBuilderReuseMatchesFreshBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	var bu Builder
	for trial := 0; trial < 50; trial++ {
		nx, ny := 20+rng.Intn(100), 20+rng.Intn(100)
		var bx, by []int
		px, py := 0, 0
		for px < nx-10 && py < ny-10 && rng.Float64() < 0.7 {
			px += 2 + rng.Intn(10)
			py += 2 + rng.Intn(10)
			if px >= nx-1 || py >= ny-1 {
				break
			}
			bx = append(bx, px)
			by = append(by, py)
		}
		al := alignmentWith(nx, ny, bx, by)
		cfg := Config{Strategy: Strategy(2 + rng.Intn(4)), WidthFrac: 0.05 + rng.Float64()*0.3}
		fresh, err := Build(al, cfg)
		if err != nil {
			t.Fatal(err)
		}
		reused, err := bu.Build(al, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := range fresh.Lo {
			if fresh.Lo[i] != reused.Lo[i] || fresh.Hi[i] != reused.Hi[i] {
				t.Fatalf("trial %d: builder reuse diverged at row %d", trial, i)
			}
		}
	}
}

func TestAllStrategiesProduceUsableBands(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nx, ny := 10+rng.Intn(60), 10+rng.Intn(60)
		var bx, by []int
		px, py := 0, 0
		for {
			px += 3 + rng.Intn(8)
			py += 3 + rng.Intn(8)
			if px >= nx-1 || py >= ny-1 {
				break
			}
			bx = append(bx, px)
			by = append(by, py)
		}
		al := alignmentWith(nx, ny, bx, by)
		x := make([]float64, nx)
		y := make([]float64, ny)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range y {
			y[i] = rng.NormFloat64()
		}
		for _, s := range []Strategy{FullGrid, FixedCoreFixedWidth, FixedCoreAdaptiveWidth,
			AdaptiveCoreFixedWidth, AdaptiveCoreAdaptiveWidth, AdaptiveCoreAdaptiveWidthAvg, ItakuraBand} {
			b, err := Build(al, Config{Strategy: s, WidthFrac: 0.1})
			if err != nil {
				return false
			}
			d, _, err := dtw.Banded(x, y, b, nil)
			if err != nil || math.IsNaN(d) || math.IsInf(d, 1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultsApplied(t *testing.T) {
	cfg := Config{Strategy: AdaptiveCoreAdaptiveWidthAvg}.withDefaults()
	if cfg.WidthFrac != 0.10 {
		t.Errorf("default width = %v, want 0.10", cfg.WidthFrac)
	}
	if cfg.NeighborRadius != 1 {
		t.Errorf("default neighbour radius = %d, want 1", cfg.NeighborRadius)
	}
	if cfg.Slope != 2 {
		t.Errorf("default slope = %v, want 2", cfg.Slope)
	}
	fcaw := Config{Strategy: FixedCoreAdaptiveWidth}.withDefaults()
	if fcaw.MinWidthFrac != 0.20 {
		t.Errorf("(fc,aw) default lower bound = %v, want 0.20", fcaw.MinWidthFrac)
	}
	acaw := Config{Strategy: AdaptiveCoreAdaptiveWidth}.withDefaults()
	if acaw.MinWidthFrac != 0 {
		t.Errorf("(ac,aw) should have no default lower bound, got %v", acaw.MinWidthFrac)
	}
}
