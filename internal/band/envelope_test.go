package band

import (
	"testing"

	"sdtw/internal/match"
)

// TestEnvelopeRadiusCoversBuiltBands is the geometry contract behind the
// retrieval cascade's exactness: for every strategy and a spread of grid
// sizes and width options, every cell of a band actually built by this
// package stays within the diagonal window EnvelopeRadius promises.
// If a builder's constants change (radius rounding, width defaults,
// clamp order), this fails before the public Index can silently drop
// true nearest neighbours.
func TestEnvelopeRadiusCoversBuiltBands(t *testing.T) {
	configs := []Config{
		{Strategy: FullGrid},
		{Strategy: FixedCoreFixedWidth, WidthFrac: 0.06},
		{Strategy: FixedCoreFixedWidth, WidthFrac: 0.10},
		{Strategy: FixedCoreFixedWidth, WidthFrac: 0.20},
		{Strategy: FixedCoreFixedWidth, WidthFrac: 1},
		{Strategy: FixedCoreAdaptiveWidth},
		{Strategy: FixedCoreAdaptiveWidth, MaxWidthFrac: 0.10},
		{Strategy: FixedCoreAdaptiveWidth, MaxWidthFrac: 0.30},
		{Strategy: ItakuraBand, Slope: 0.5}, // degenerate: builder resets to 2
		{Strategy: ItakuraBand, Slope: 1},   // degenerate: builder resets to 2
		{Strategy: ItakuraBand, Slope: 1.5},
		{Strategy: ItakuraBand},
		{Strategy: ItakuraBand, Slope: 3},
	}
	// Alignments to build against: the unpartitioned one every fixed-core
	// strategy uses, plus a skewed partition so adaptive widths vary.
	alignments := func(m int) []*match.Alignment {
		plain := &match.Alignment{NX: m, NY: m}
		skew := &match.Alignment{
			NX: m, NY: m,
			BoundsX: []int{m / 5, m / 2},
			BoundsY: []int{m / 2, 4 * m / 5},
		}
		return []*match.Alignment{plain, skew}
	}
	for _, m := range []int{8, 40, 97, 150} {
		for _, cfg := range configs {
			r := EnvelopeRadius(cfg, m)
			for ai, al := range alignments(m) {
				b, err := Build(al, cfg)
				if err != nil {
					t.Fatalf("m=%d %v align=%d: %v", m, cfg.Strategy, ai, err)
				}
				for i := 0; i < len(b.Lo); i++ {
					for _, j := range []int{b.Lo[i], b.Hi[i]} {
						if j < i-r || j > i+r {
							t.Fatalf("m=%d %v w=%g maxw=%g slope=%g align=%d: cell (%d,%d) outside radius %d",
								m, cfg.Strategy, cfg.WidthFrac, cfg.MaxWidthFrac, cfg.Slope, ai, i, j, r)
						}
					}
				}
			}
		}
	}
	// Adaptive-core strategies must get the full-grid radius: their band
	// can legitimately reach any cell.
	for _, s := range []Strategy{AdaptiveCoreFixedWidth, AdaptiveCoreAdaptiveWidth, AdaptiveCoreAdaptiveWidthAvg} {
		if r := EnvelopeRadius(Config{Strategy: s}, 100); r != 100 {
			t.Fatalf("%v envelope radius %d, want full grid 100", s, r)
		}
	}
}
