package experiments

import (
	"fmt"
	"strings"

	"sdtw/internal/band"
	"sdtw/internal/core"
	"sdtw/internal/datasets"
	"sdtw/internal/dtw"
)

// RenderBandShapes draws ASCII pictures of the five constraint bands on a
// real pair of warped series (the qualitative content of paper Figures 2
// and 10). Rows are X positions (downsampled), columns are Y positions;
// '#' marks cells inside the band and '*' the optimal full-grid warp path.
func RenderBandShapes(seed int64) (string, error) {
	d := datasets.Gun(datasets.Config{Seed: seed, SeriesPerClass: 2})
	x, y := d.Series[0], d.Series[1]

	pr, err := dtw.DistanceWithPath(x.Values, y.Values, nil)
	if err != nil {
		return "", err
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Pair: %s vs %s (N=%d, M=%d); '*' = optimal warp path, '#' = band\n\n",
		x.ID, y.ID, x.Len(), y.Len())
	strategies := []band.Strategy{
		band.FixedCoreFixedWidth,
		band.FixedCoreAdaptiveWidth,
		band.AdaptiveCoreFixedWidth,
		band.AdaptiveCoreAdaptiveWidth,
		band.AdaptiveCoreAdaptiveWidthAvg,
		band.ItakuraBand,
	}
	for _, s := range strategies {
		opts := core.DefaultOptions()
		opts.Band.Strategy = s
		opts.Band.WidthFrac = 0.10
		opts.KeepBand = true
		engine := core.NewEngine(opts)
		res, err := engine.Distance(x, y)
		if err != nil {
			return "", fmt.Errorf("rendering %v: %w", s, err)
		}
		fmt.Fprintf(&b, "--- %v (cells gain %.2f, distance %.4f vs optimal %.4f) ---\n",
			s, res.CellsGain(), res.Distance, pr.Distance)
		b.WriteString(renderBand(res.Band, pr.Path, 36, 72))
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// renderBand rasterises a band and a path onto a rows-by-cols character
// grid. The DTW convention draws row 0 at the bottom.
func renderBand(bd dtw.Band, path dtw.Path, rows, cols int) string {
	n, m := bd.N(), bd.M
	if n == 0 || m == 0 {
		return "(empty band)\n"
	}
	if rows > n {
		rows = n
	}
	if cols > m {
		cols = m
	}
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols))
	}
	toRow := func(i int) int { return i * rows / n }
	toCol := func(j int) int { return j * cols / m }
	for i := 0; i < n; i++ {
		r := toRow(i)
		for j := bd.Lo[i]; j <= bd.Hi[i]; j++ {
			grid[r][toCol(j)] = '#'
		}
	}
	for _, s := range path {
		grid[toRow(s.I)][toCol(s.J)] = '*'
	}
	var b strings.Builder
	for r := rows - 1; r >= 0; r-- {
		b.WriteString("  |")
		b.Write(grid[r])
		b.WriteByte('\n')
	}
	b.WriteString("  +" + strings.Repeat("-", cols) + "\n")
	return b.String()
}
