package experiments

import (
	"strings"
	"testing"
)

func TestRenderBandShapes(t *testing.T) {
	out, err := RenderBandShapes(42)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fc,fw", "fc,aw", "ac,fw", "ac,aw", "ac2,aw", "itakura", "optimal warp path"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q", want)
		}
	}
	// Every panel contains band and path glyphs.
	if strings.Count(out, "#") < 100 {
		t.Fatal("band glyphs missing")
	}
	if strings.Count(out, "*") < 50 {
		t.Fatal("path glyphs missing")
	}
}

func TestExtrasSmall(t *testing.T) {
	rows, err := Extras("Gun", Small, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(rows))
	}
	byName := map[string]ExtraRow{}
	for _, r := range rows {
		byName[r.Method] = r
		if r.DistErr < 0 {
			t.Fatalf("%s negative distance error %v", r.Method, r.DistErr)
		}
		if r.CellsGain <= 0 || r.CellsGain >= 1 {
			t.Fatalf("%s cells gain %v out of (0,1)", r.Method, r.CellsGain)
		}
	}
	// The symmetric band is a superset, so it cannot be less accurate
	// than the asymmetric (ac,aw) band.
	if byName["ac,aw sym"].DistErr > byName["ac,aw"].DistErr+1e-9 {
		t.Fatalf("symmetric band less accurate: %v vs %v",
			byName["ac,aw sym"].DistErr, byName["ac,aw"].DistErr)
	}
	// The combination prunes at least as much as sDTW alone.
	if byName["fast∩sdtw"].CellsGain < byName["ac,aw"].CellsGain-1e-9 {
		t.Fatalf("combination prunes less than sDTW alone: %v vs %v",
			byName["fast∩sdtw"].CellsGain, byName["ac,aw"].CellsGain)
	}
	out := RenderExtras("Gun", rows)
	if !strings.Contains(out, "fastdtw") {
		t.Fatalf("rendered extras malformed:\n%s", out)
	}
}
