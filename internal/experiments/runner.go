package experiments

import (
	"fmt"
	"time"

	"sdtw/internal/core"
	"sdtw/internal/datasets"
	"sdtw/internal/eval"
	"sdtw/internal/series"
)

// Scale trims workload sizes so experiments finish quickly in benchmarks
// while preserving class structure. Full reproduces the paper's sizes.
type Scale int

const (
	// Full uses the paper's data-set sizes (Table 1).
	Full Scale = iota
	// Medium uses roughly half the series per class.
	Medium
	// Small uses a handful of series per class for fast CI/bench runs.
	Small
)

// DatasetConfig returns the generator configuration for a paper data set
// at the given scale, keyed to a deterministic seed.
func DatasetConfig(name string, scale Scale, seed int64) datasets.Config {
	cfg := datasets.Config{Seed: seed}
	switch scale {
	case Full:
		// generator defaults reproduce Table 1
	case Medium:
		switch name {
		case "Gun":
			cfg.SeriesPerClass = 12
		case "Trace":
			cfg.SeriesPerClass = 12
		case "50Words":
			cfg.SeriesPerClass = 4
		}
	case Small:
		switch name {
		case "Gun":
			cfg.SeriesPerClass = 6
		case "Trace":
			cfg.SeriesPerClass = 5
		case "50Words":
			cfg.SeriesPerClass = 2
		}
	}
	return cfg
}

// LoadDataset generates a paper data set at the given scale.
func LoadDataset(name string, scale Scale, seed int64) (*datasets.Dataset, error) {
	return datasets.ByName(name, DatasetConfig(name, scale, seed))
}

// Workload bundles a data set with its precomputed full-DTW reference
// matrix, shared by every algorithm evaluated on it.
type Workload struct {
	Data *datasets.Dataset
	Ref  *eval.Matrix
}

// NewWorkload generates the data set and its reference matrix.
func NewWorkload(name string, scale Scale, seed int64) (*Workload, error) {
	d, err := LoadDataset(name, scale, seed)
	if err != nil {
		return nil, err
	}
	ref, err := eval.FullDTWMatrix(d.Series, nil)
	if err != nil {
		return nil, fmt.Errorf("experiments: reference matrix for %s: %w", name, err)
	}
	return &Workload{Data: d, Ref: ref}, nil
}

// AlgoResult is the outcome of evaluating one algorithm on one workload.
type AlgoResult struct {
	Algorithm string
	Dataset   string
	// Retrieval accuracy accret(k) for k = 5 and 10.
	Top5Acc, Top10Acc float64
	// DistErr is the mean relative distance over-estimation errdist.
	DistErr float64
	// IntraClassErr is errdist restricted to same-class pairs.
	IntraClassErr float64
	// Cls5Acc, Cls10Acc are kNN classification agreements acccls(k).
	Cls5Acc, Cls10Acc float64
	// TimeGain is (t_dtw − t_*)/t_dtw, measured sequentially over a
	// deterministic pair sample (the paper's single-threaded protocol).
	TimeGain float64
	// CellsGain is the machine-independent pruning gain.
	CellsGain float64
	// MatchShare is MatchTime/(MatchTime+DPTime), Fig 17's breakdown.
	MatchShare float64
	// Timing carries the raw sequential timing sample.
	Timing eval.Timing
	// AvgPairs is the mean number of consistent salient pairs per
	// comparison (0 for non-adaptive algorithms).
	AvgPairs float64
	// ExtractTime is the one-time feature extraction cost for the whole
	// data set (reported separately per §4.2).
	ExtractTime time.Duration
	// Stats carries the raw pairwise accounting.
	Stats eval.PairStats
}

// Evaluate runs one algorithm over the workload: warms the feature cache
// (outside the timed region, matching the paper's protocol), computes the
// constrained matrix, and derives every §4.2 measure against the
// reference.
func Evaluate(w *Workload, algo Algorithm) (AlgoResult, error) {
	engine := core.NewEngine(algo.Opts)
	res := AlgoResult{Algorithm: algo.Name, Dataset: w.Data.Name}

	needsFeatures := algo.Opts.Band.Strategy.AdaptiveCore() || algo.Opts.Band.Strategy.AdaptiveWidth()
	if needsFeatures {
		warm, err := engine.Warm(w.Data.Series)
		if err != nil {
			return res, err
		}
		res.ExtractTime = warm
	}

	est, err := eval.EngineMatrix(engine, w.Data.Series)
	if err != nil {
		return res, err
	}
	labels := w.Data.Labels()
	res.Top5Acc = eval.MeanRetrievalAccuracy(w.Ref, est, 5)
	res.Top10Acc = eval.MeanRetrievalAccuracy(w.Ref, est, 10)
	res.DistErr = eval.MeanDistanceError(w.Ref, est)
	res.IntraClassErr = eval.MeanIntraClassDistanceError(w.Ref, est, labels)
	res.Cls5Acc = eval.MeanClassificationAccuracy(w.Ref, est, labels, 5)
	res.Cls10Acc = eval.MeanClassificationAccuracy(w.Ref, est, labels, 10)
	res.CellsGain = est.Stats.CellsGain()
	res.Stats = est.Stats

	// Time gains come from a separate sequential pass: per-pair wall
	// times measured inside a parallel matrix computation carry scheduler
	// noise that swamps the signal.
	timing, err := eval.TimePairs(engine, w.Data.Series, nil, 200)
	if err != nil {
		return res, err
	}
	res.Timing = timing
	res.TimeGain = timing.Gain()
	res.MatchShare = timing.MatchShare()
	if needsFeatures && est.Stats.Pairs > 0 {
		res.AvgPairs = avgConsistentPairs(engine, w.Data.Series)
	}
	return res, nil
}

// avgConsistentPairs samples alignments across the data set to report the
// mean number of surviving salient pairs per comparison.
func avgConsistentPairs(engine *core.Engine, data []series.Series) float64 {
	if len(data) < 2 {
		return 0
	}
	count, total := 0, 0
	step := len(data)/8 + 1
	for i := 0; i < len(data); i += step {
		j := (i + step) % len(data)
		if j == i {
			continue
		}
		al, err := engine.Align(data[i], data[j])
		if err != nil {
			continue
		}
		total += len(al.Pairs)
		count++
	}
	if count == 0 {
		return 0
	}
	return float64(total) / float64(count)
}
