package experiments

import (
	"testing"
)

// TestPaperShapeGun asserts the paper's headline findings on a
// medium-scale Gun workload: this is the reproduction regression test —
// if a change to the pipeline breaks any of the qualitative claims the
// repository exists to reproduce, it fails here first. Skipped under
// -short (it computes several full distance matrices).
func TestPaperShapeGun(t *testing.T) {
	if testing.Short() {
		t.Skip("reproduction regression runs medium-scale matrices")
	}
	results, err := Fig13("Gun", Medium, 42)
	if err != nil {
		t.Fatal(err)
	}
	r := indexResults(t, results)

	// Claim (Fig 13a): for fixed core & fixed width, larger w is more
	// accurate.
	assertLess(t, r["fc,fw 6%"].Top5Acc, r["fc,fw 20%"].Top5Acc, "fc,fw accuracy grows with width")
	// Claim (Fig 13/14): adapting the core boosts accuracy at equal
	// width on shift-heavy data.
	assertLess(t, r["fc,fw 10%"].Top5Acc, r["ac,fw 10%"].Top5Acc, "(ac,fw) beats (fc,fw) at 10%")
	assertLess(t, r["ac,fw 10%"].DistErr, r["fc,fw 10%"].DistErr, "(ac,fw) error below (fc,fw) at 10%")
	// Claim: adapting the width boosts accuracy further.
	assertLess(t, r["ac,aw"].DistErr, r["ac,fw 10%"].DistErr, "(ac,aw) error below (ac,fw)")
	// Claim (Fig 14a): fixed core & fixed width suffers extreme errors on
	// Gun — at least an order of magnitude above (ac2,aw).
	if r["fc,fw 6%"].DistErr < 10*r["ac2,aw"].DistErr {
		t.Errorf("fc,fw 6%% error %v not an order of magnitude above ac2,aw %v",
			r["fc,fw 6%"].DistErr, r["ac2,aw"].DistErr)
	}
	// Claim: every algorithm prunes the grid substantially.
	for name, res := range r {
		if res.CellsGain < 0.4 {
			t.Errorf("%s cells gain %v below 0.4", name, res.CellsGain)
		}
	}
}

// TestPaperShape50Words asserts the paper's 50Words exception: with no
// major shifts, (fc,aw) posts the smallest distance error.
func TestPaperShape50Words(t *testing.T) {
	if testing.Short() {
		t.Skip("reproduction regression runs medium-scale matrices")
	}
	results, err := Fig14("50Words", Medium, 42)
	if err != nil {
		t.Fatal(err)
	}
	r := indexResults(t, results)
	for name, res := range r {
		if name == "fc,aw" {
			continue
		}
		if res.DistErr < r["fc,aw"].DistErr {
			t.Errorf("(fc,aw) not the most accurate on 50Words: %s has %v < %v",
				name, res.DistErr, r["fc,aw"].DistErr)
		}
	}
}

// TestPaperShapeTraceIntraClass asserts Fig 15's finding: adaptive cores
// bring intra-class Trace errors down by an order of magnitude.
func TestPaperShapeTraceIntraClass(t *testing.T) {
	if testing.Short() {
		t.Skip("reproduction regression runs medium-scale matrices")
	}
	results, err := Fig15(Medium, 42)
	if err != nil {
		t.Fatal(err)
	}
	r := indexResults(t, results)
	if r["fc,fw 10%"].IntraClassErr < 5*r["ac,fw 10%"].IntraClassErr {
		t.Errorf("adaptive core did not slash intra-class error: fc %v vs ac %v",
			r["fc,fw 10%"].IntraClassErr, r["ac,fw 10%"].IntraClassErr)
	}
}

func indexResults(t *testing.T, results []AlgoResult) map[string]AlgoResult {
	t.Helper()
	m := make(map[string]AlgoResult, len(results))
	for _, r := range results {
		m[r.Algorithm] = r
	}
	return m
}

func assertLess(t *testing.T, a, b float64, claim string) {
	t.Helper()
	if a >= b {
		t.Errorf("%s: %v !< %v", claim, a, b)
	}
}
