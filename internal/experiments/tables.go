package experiments

import (
	"fmt"
	"strings"
	"time"

	"sdtw/internal/datasets"
	"sdtw/internal/sift"
)

// Table1Row is one line of the paper's Table 1 (data set overview).
type Table1Row struct {
	Dataset    string
	Length     int
	NumSeries  int
	NumClasses int
}

// Table1 generates the three data sets and reports their shapes.
func Table1(scale Scale, seed int64) ([]Table1Row, error) {
	var rows []Table1Row
	for _, name := range []string{"Gun", "Trace", "50Words"} {
		d, err := LoadDataset(name, scale, seed)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{
			Dataset:    d.Name,
			Length:     d.Length,
			NumSeries:  d.Len(),
			NumClasses: d.NumClasses,
		})
	}
	return rows, nil
}

// RenderTable1 formats Table 1 in the paper's layout.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %8s %10s %10s\n", "Data Set", "Length", "# Series", "# Classes")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %8d %10d %10d\n", r.Dataset, r.Length, r.NumSeries, r.NumClasses)
	}
	return b.String()
}

// Table2Row is one line of the paper's Table 2 (average salient point
// counts per scale class), plus the per-series extraction time the paper
// reports in §4.2 (~0.7–3 ms per series in Matlab).
type Table2Row struct {
	Dataset             string
	Fine, Medium, Rough float64
	Total               float64
	ExtractPerSeries    time.Duration
}

// Table2 extracts salient features over every series of each data set
// with the paper's default configuration and averages the per-scale
// counts.
func Table2(scale Scale, seed int64) ([]Table2Row, error) {
	cfg := sift.DefaultConfig()
	var rows []Table2Row
	for _, name := range []string{"Gun", "Trace", "50Words"} {
		d, err := LoadDataset(name, scale, seed)
		if err != nil {
			return nil, err
		}
		row, err := table2Row(d, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func table2Row(d *datasets.Dataset, cfg sift.Config) (Table2Row, error) {
	row := Table2Row{Dataset: d.Name}
	start := time.Now()
	var fine, medium, rough int
	for _, s := range d.Series {
		feats, err := sift.Extract(s.Values, cfg)
		if err != nil {
			return row, fmt.Errorf("experiments: table 2 on %s/%s: %w", d.Name, s.ID, err)
		}
		counts := sift.CountByClass(feats)
		fine += counts[sift.Fine]
		medium += counts[sift.Medium]
		rough += counts[sift.Rough]
	}
	elapsed := time.Since(start)
	n := float64(d.Len())
	row.Fine = float64(fine) / n
	row.Medium = float64(medium) / n
	row.Rough = float64(rough) / n
	row.Total = row.Fine + row.Medium + row.Rough
	row.ExtractPerSeries = elapsed / time.Duration(d.Len())
	return row, nil
}

// RenderTable2 formats Table 2 in the paper's layout.
func RenderTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %8s %8s %8s %8s %12s\n", "Data Set", "Fine", "Medium", "Rough", "Total", "Extract/ser")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %8.1f %8.1f %8.1f %8.1f %12s\n",
			r.Dataset, r.Fine, r.Medium, r.Rough, r.Total, r.ExtractPerSeries.Round(time.Microsecond))
	}
	return b.String()
}
