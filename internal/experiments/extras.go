package experiments

import (
	"fmt"
	"strings"

	"sdtw/internal/band"
	"sdtw/internal/core"
	"sdtw/internal/eval"
	"sdtw/internal/match"
	"sdtw/internal/reduced"
	"sdtw/internal/sift"
)

// ExtraRow is one line of the extensions comparison: techniques beyond
// the paper's evaluated grid (Itakura, symmetric sDTW, FastDTW, and the
// multi-resolution ∩ sDTW combination) measured with the same protocol.
type ExtraRow struct {
	Method    string
	DistErr   float64
	CellsGain float64
}

// Extras evaluates the extension techniques on one data set against the
// full-DTW reference, reporting mean distance error and mean cells gain
// over all pairs.
func Extras(name string, scale Scale, seed int64) ([]ExtraRow, error) {
	w, err := NewWorkload(name, scale, seed)
	if err != nil {
		return nil, err
	}
	data := w.Data.Series
	n := len(data)

	type method struct {
		name string
		run  func(i, j int) (dist float64, cells int, err error)
	}
	matcherCfg := match.DefaultConfig()
	featCfg := sift.DefaultConfig()

	// Shared engines so feature extraction is cached across pairs.
	mkEngine := func(cfg band.Config) *core.Engine {
		return core.NewEngine(core.Options{
			Band: cfg, Features: featCfg, Matcher: matcherCfg, CacheFeatures: true,
		})
	}
	acaw := mkEngine(band.Config{Strategy: band.AdaptiveCoreAdaptiveWidth})
	sym := mkEngine(band.Config{Strategy: band.AdaptiveCoreAdaptiveWidth, Symmetric: true})
	ita := mkEngine(band.Config{Strategy: band.ItakuraBand})
	for _, e := range []*core.Engine{acaw, sym} {
		if _, err := e.Warm(data); err != nil {
			return nil, err
		}
	}

	engineMethod := func(e *core.Engine) func(i, j int) (float64, int, error) {
		return func(i, j int) (float64, int, error) {
			res, err := e.Distance(data[i], data[j])
			return res.Distance, res.CellsFilled, err
		}
	}
	methods := []method{
		{"itakura", engineMethod(ita)},
		{"ac,aw", engineMethod(acaw)},
		{"ac,aw sym", engineMethod(sym)},
		{"fastdtw r=1", func(i, j int) (float64, int, error) {
			res, err := reduced.FastDTW(data[i].Values, data[j].Values, 1, nil)
			return res.Distance, res.Cells, err
		}},
		{"fast∩sdtw", func(i, j int) (float64, int, error) {
			fx, err := acaw.Features(data[i])
			if err != nil {
				return 0, 0, err
			}
			fy, err := acaw.Features(data[j])
			if err != nil {
				return 0, 0, err
			}
			al, err := match.Match(fx, fy, data[i].Len(), data[j].Len(), matcherCfg)
			if err != nil {
				return 0, 0, err
			}
			sdtwBand, err := band.Build(al, band.Config{Strategy: band.AdaptiveCoreAdaptiveWidth})
			if err != nil {
				return 0, 0, err
			}
			res, err := reduced.Combined(data[i].Values, data[j].Values, 1, sdtwBand, nil)
			return res.Distance, res.Cells, err
		}},
	}

	var rows []ExtraRow
	for _, m := range methods {
		var errs []float64
		cells, grid := 0, 0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				d, c, err := m.run(i, j)
				if err != nil {
					return nil, fmt.Errorf("experiments: extras %s on (%d,%d): %w", m.name, i, j, err)
				}
				errs = append(errs, eval.DistanceError(w.Ref.D[i][j], d))
				cells += c
				grid += data[i].Len() * data[j].Len()
			}
		}
		rows = append(rows, ExtraRow{
			Method:    m.name,
			DistErr:   eval.Mean(errs),
			CellsGain: 1 - float64(cells)/float64(grid),
		})
	}
	return rows, nil
}

// RenderExtras formats the extensions comparison.
func RenderExtras(name string, rows []ExtraRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Data set: %s (extensions beyond the paper's grid)\n", name)
	fmt.Fprintf(&b, "%-12s %10s %9s\n", "Method", "disterr", "cellgain")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %10.4f %9.3f\n", r.Method, r.DistErr, r.CellsGain)
	}
	return b.String()
}
