package experiments

import (
	"fmt"
	"strings"

	"sdtw/internal/core"
	"sdtw/internal/datasets"
	"sdtw/internal/learned"
	"sdtw/internal/series"
)

// BaselineRow compares one constraint approach on a train/holdout split.
type BaselineRow struct {
	Method string
	// HoldoutAccuracy is 1NN classification accuracy on unseen series.
	HoldoutAccuracy float64
	// NeedsTraining records whether the method consumed the training
	// labels (the §1 distinction).
	NeedsTraining bool
}

// LearnedBaseline contrasts the Ratanamahatana–Keogh style learned band
// with sDTW's training-free structural constraints (and the plain fixed
// band) on a train/holdout split of the Gun workload: the comparison the
// paper's introduction frames — sDTW extracts its constraints from the
// two series themselves, the learned band from labeled samples.
func LearnedBaseline(seed int64) ([]BaselineRow, error) {
	d := datasets.Gun(datasets.Config{Seed: seed, SeriesPerClass: 10})
	// Split: interleave to keep both classes in both halves.
	var train, holdout []series.Series
	for i, s := range d.Series {
		if i%2 == 0 {
			train = append(train, s)
		} else {
			holdout = append(holdout, s)
		}
	}

	lb, err := learned.Learn(train, learned.Config{Segments: 8, MaxIters: 6})
	if err != nil {
		return nil, fmt.Errorf("experiments: learning band: %w", err)
	}
	learnedAcc := 0
	for _, q := range holdout {
		label, err := learned.Classify1NN(lb, train, q, nil)
		if err != nil {
			return nil, err
		}
		if label == q.Label {
			learnedAcc++
		}
	}

	classify := func(opts core.Options) (int, error) {
		engine := core.NewEngine(opts)
		if _, err := engine.Warm(train); err != nil {
			return 0, err
		}
		correct := 0
		for _, q := range holdout {
			bestD := -1.0
			bestLabel := -1
			for _, c := range train {
				res, err := engine.Distance(q, c)
				if err != nil {
					return 0, err
				}
				if bestLabel < 0 || res.Distance < bestD {
					bestD, bestLabel = res.Distance, c.Label
				}
			}
			if bestLabel == q.Label {
				correct++
			}
		}
		return correct, nil
	}

	sdtwOpts := core.DefaultOptions()
	sdtwAcc, err := classify(sdtwOpts)
	if err != nil {
		return nil, err
	}
	fixedOpts := core.DefaultOptions()
	fixedOpts.Band.Strategy = 1 // FixedCoreFixedWidth
	fixedOpts.Band.WidthFrac = 0.10
	fixedAcc, err := classify(fixedOpts)
	if err != nil {
		return nil, err
	}

	n := float64(len(holdout))
	return []BaselineRow{
		{Method: "learned band (R-K)", HoldoutAccuracy: float64(learnedAcc) / n, NeedsTraining: true},
		{Method: "sDTW (ac,aw)", HoldoutAccuracy: float64(sdtwAcc) / n, NeedsTraining: false},
		{Method: "fixed band 10%", HoldoutAccuracy: float64(fixedAcc) / n, NeedsTraining: false},
	}, nil
}

// RenderBaseline formats the learned-vs-structural comparison.
func RenderBaseline(rows []BaselineRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Learned constraints vs structural constraints (Gun, train/holdout split)\n")
	fmt.Fprintf(&b, "%-20s %10s %15s\n", "method", "holdout", "needs-training")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s %10.3f %15v\n", r.Method, r.HoldoutAccuracy, r.NeedsTraining)
	}
	return b.String()
}
