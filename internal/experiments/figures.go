package experiments

import (
	"fmt"
	"strings"
)

// Fig13 evaluates the standard algorithm grid on one data set and reports
// top-5/top-10 retrieval accuracy with time gains (paper Fig 13).
func Fig13(name string, scale Scale, seed int64) ([]AlgoResult, error) {
	return evaluateGrid(name, scale, seed, StandardAlgorithms())
}

// Fig14 reports distance error versus time gain on one data set (paper
// Fig 14). It shares Fig 13's evaluation grid; both figures derive from
// the same matrices, so callers wanting both should reuse the results.
func Fig14(name string, scale Scale, seed int64) ([]AlgoResult, error) {
	return evaluateGrid(name, scale, seed, StandardAlgorithms())
}

// Fig15 reports intra-class distance errors on the Trace data set (paper
// Fig 15: 4 classes, ~25 series each).
func Fig15(scale Scale, seed int64) ([]AlgoResult, error) {
	return evaluateGrid("Trace", scale, seed, StandardAlgorithms())
}

// Fig16 reports top-5/top-10 kNN classification agreement on the 50Words
// data set (paper Fig 16).
func Fig16(scale Scale, seed int64) ([]AlgoResult, error) {
	return evaluateGrid("50Words", scale, seed, StandardAlgorithms())
}

// Fig17 reports the matching vs dynamic-programming time breakdown of the
// adaptive algorithms on one data set (paper Fig 17).
func Fig17(name string, scale Scale, seed int64) ([]AlgoResult, error) {
	return evaluateGrid(name, scale, seed, AdaptiveAlgorithms())
}

// Fig18Point is one sweep point of the descriptor-length analysis.
type Fig18Point struct {
	Bins   int
	Result AlgoResult
}

// Fig18 sweeps the descriptor length over the adaptive algorithms on one
// data set (paper Fig 18: bins ∈ {4, 8, 16, 32, 64, 128}).
func Fig18(name string, scale Scale, seed int64, bins []int) ([]Fig18Point, error) {
	if len(bins) == 0 {
		bins = []int{4, 8, 16, 32, 64, 128}
	}
	w, err := NewWorkload(name, scale, seed)
	if err != nil {
		return nil, err
	}
	var points []Fig18Point
	for _, nb := range bins {
		for _, algo := range AdaptiveAlgorithms() {
			res, err := Evaluate(w, algo.WithDescriptorBins(nb))
			if err != nil {
				return nil, fmt.Errorf("experiments: fig18 %s bins=%d %s: %w", name, nb, algo.Name, err)
			}
			points = append(points, Fig18Point{Bins: nb, Result: res})
		}
	}
	return points, nil
}

func evaluateGrid(name string, scale Scale, seed int64, algos []Algorithm) ([]AlgoResult, error) {
	w, err := NewWorkload(name, scale, seed)
	if err != nil {
		return nil, err
	}
	var results []AlgoResult
	for _, algo := range algos {
		res, err := Evaluate(w, algo)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s on %s: %w", algo.Name, name, err)
		}
		results = append(results, res)
	}
	return results, nil
}

// RenderFig13 formats retrieval accuracy and time gain rows.
func RenderFig13(results []AlgoResult) string {
	var b strings.Builder
	if len(results) > 0 {
		fmt.Fprintf(&b, "Data set: %s\n", results[0].Dataset)
	}
	fmt.Fprintf(&b, "%-12s %8s %8s %9s %9s\n", "Algorithm", "top-5", "top-10", "timegain", "cellgain")
	for _, r := range results {
		fmt.Fprintf(&b, "%-12s %8.3f %8.3f %9.3f %9.3f\n", r.Algorithm, r.Top5Acc, r.Top10Acc, r.TimeGain, r.CellsGain)
	}
	return b.String()
}

// RenderFig14 formats distance error vs time gain rows.
func RenderFig14(results []AlgoResult) string {
	var b strings.Builder
	if len(results) > 0 {
		fmt.Fprintf(&b, "Data set: %s\n", results[0].Dataset)
	}
	fmt.Fprintf(&b, "%-12s %10s %9s %9s\n", "Algorithm", "disterr", "timegain", "cellgain")
	for _, r := range results {
		fmt.Fprintf(&b, "%-12s %10.4f %9.3f %9.3f\n", r.Algorithm, r.DistErr, r.TimeGain, r.CellsGain)
	}
	return b.String()
}

// RenderFig15 formats intra-class distance error rows.
func RenderFig15(results []AlgoResult) string {
	var b strings.Builder
	if len(results) > 0 {
		fmt.Fprintf(&b, "Data set: %s (intra-class pairs only)\n", results[0].Dataset)
	}
	fmt.Fprintf(&b, "%-12s %14s %9s\n", "Algorithm", "intra-disterr", "timegain")
	for _, r := range results {
		fmt.Fprintf(&b, "%-12s %14.4f %9.3f\n", r.Algorithm, r.IntraClassErr, r.TimeGain)
	}
	return b.String()
}

// RenderFig16 formats classification agreement rows.
func RenderFig16(results []AlgoResult) string {
	var b strings.Builder
	if len(results) > 0 {
		fmt.Fprintf(&b, "Data set: %s\n", results[0].Dataset)
	}
	fmt.Fprintf(&b, "%-12s %8s %8s %9s\n", "Algorithm", "cls-5", "cls-10", "timegain")
	for _, r := range results {
		fmt.Fprintf(&b, "%-12s %8.3f %8.3f %9.3f\n", r.Algorithm, r.Cls5Acc, r.Cls10Acc, r.TimeGain)
	}
	return b.String()
}

// RenderFig17 formats the matching/DP time breakdown.
func RenderFig17(results []AlgoResult) string {
	var b strings.Builder
	if len(results) > 0 {
		fmt.Fprintf(&b, "Data set: %s\n", results[0].Dataset)
	}
	fmt.Fprintf(&b, "%-12s %12s %12s %11s %9s\n", "Algorithm", "match(ms)", "dp(ms)", "match-share", "avgpairs")
	for _, r := range results {
		fmt.Fprintf(&b, "%-12s %12.2f %12.2f %11.3f %9.1f\n",
			r.Algorithm,
			float64(r.Timing.MatchTime.Microseconds())/1000,
			float64(r.Timing.DPTime.Microseconds())/1000,
			r.MatchShare, r.AvgPairs)
	}
	return b.String()
}

// RenderFig18 formats the descriptor-length sweep.
func RenderFig18(points []Fig18Point) string {
	var b strings.Builder
	if len(points) > 0 {
		fmt.Fprintf(&b, "Data set: %s\n", points[0].Result.Dataset)
	}
	fmt.Fprintf(&b, "%-6s %-12s %10s %8s %9s %9s\n", "bins", "Algorithm", "disterr", "top-10", "timegain", "cellgain")
	for _, p := range points {
		r := p.Result
		fmt.Fprintf(&b, "%-6d %-12s %10.4f %8.3f %9.3f %9.3f\n", p.Bins, r.Algorithm, r.DistErr, r.Top10Acc, r.TimeGain, r.CellsGain)
	}
	return b.String()
}
