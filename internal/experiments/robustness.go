package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"sdtw/internal/core"
	"sdtw/internal/datasets"
	"sdtw/internal/dtw"
	"sdtw/internal/match"
	"sdtw/internal/series"
	"sdtw/internal/sift"
)

// NoiseRow reports feature and alignment stability at one noise level.
type NoiseRow struct {
	// Sigma is the observation noise level.
	Sigma float64
	// FeatureDrift is the mean |Δposition| (in samples) of the strongest
	// features between the clean and noisy versions of a series.
	FeatureDrift float64
	// PairSurvival is the mean fraction of consistent pairs (clean vs
	// clean baseline) still found between clean and noisy versions.
	PairSurvival float64
	// DistErr is the mean sDTW (ac,aw) distance error against full DTW
	// across noisy same-class pairs.
	DistErr float64
}

// NoiseRobustness quantifies §3.1.2's claim that the detected salient
// features are robust against noise: it re-generates the Gun workload at
// increasing observation-noise levels and measures how far the strongest
// features drift, how many consistent pairs survive, and how the (ac,aw)
// distance error responds.
func NoiseRobustness(seed int64, sigmas []float64) ([]NoiseRow, error) {
	if len(sigmas) == 0 {
		sigmas = []float64{0.005, 0.01, 0.02, 0.05}
	}
	const perClass = 4
	clean := datasets.Gun(datasets.Config{Seed: seed, SeriesPerClass: perClass, NoiseSigma: 0.001})
	cfg := sift.DefaultConfig()
	cleanFeats := make([][]sift.Feature, clean.Len())
	for i, s := range clean.Series {
		f, err := sift.Extract(s.Values, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: noise baseline %s: %w", s.ID, err)
		}
		cleanFeats[i] = f
	}
	basePairs := make([]int, 0, clean.Len())
	for i := 0; i+1 < clean.Len(); i += 2 {
		al, err := match.Match(cleanFeats[i], cleanFeats[i+1], clean.Length, clean.Length, match.DefaultConfig())
		if err != nil {
			return nil, err
		}
		basePairs = append(basePairs, len(al.Pairs))
	}

	var rows []NoiseRow
	for _, sigma := range sigmas {
		rng := rand.New(rand.NewSource(seed * 7))
		row := NoiseRow{Sigma: sigma}
		drift, driftN := 0.0, 0
		surv, survN := 0.0, 0
		engine := core.NewEngine(core.DefaultOptions())
		errSum, errN := 0.0, 0
		for i, s := range clean.Series {
			noisy := series.New(fmt.Sprintf("%s-n%g", s.ID, sigma), s.Label,
				series.AddNoise(rng, s.Values, sigma))
			nf, err := sift.Extract(noisy.Values, cfg)
			if err != nil {
				return nil, err
			}
			drift += meanStrongestDrift(cleanFeats[i], nf, 3)
			driftN++
			if i%2 == 0 && i+1 < clean.Len() {
				al, err := match.Match(cleanFeats[i], nf, clean.Length, clean.Length, match.DefaultConfig())
				if err != nil {
					return nil, err
				}
				base := basePairs[i/2]
				if base > 0 {
					frac := float64(len(al.Pairs)) / float64(base)
					if frac > 1 {
						frac = 1
					}
					surv += frac
					survN++
				}
				// Distance error on the noisy pair.
				other := series.New(fmt.Sprintf("%s-o%g", clean.Series[i+1].ID, sigma), 0,
					series.AddNoise(rng, clean.Series[i+1].Values, sigma))
				res, err := engine.Distance(noisy, other)
				if err != nil {
					return nil, err
				}
				full, err := fullDTW(noisy.Values, other.Values)
				if err != nil {
					return nil, err
				}
				if full > 0 {
					errSum += (res.Distance - full) / full
					errN++
				}
			}
		}
		if driftN > 0 {
			row.FeatureDrift = drift / float64(driftN)
		}
		if survN > 0 {
			row.PairSurvival = surv / float64(survN)
		}
		if errN > 0 {
			row.DistErr = errSum / float64(errN)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// meanStrongestDrift matches the k strongest clean features to the
// nearest detected feature in the noisy set and averages the positional
// drift.
func meanStrongestDrift(clean, noisy []sift.Feature, k int) float64 {
	if len(clean) == 0 || len(noisy) == 0 {
		return 0
	}
	strongest := append([]sift.Feature(nil), clean...)
	for i := 0; i < len(strongest) && i < k; i++ {
		for j := i + 1; j < len(strongest); j++ {
			if abs(strongest[j].Response) > abs(strongest[i].Response) {
				strongest[i], strongest[j] = strongest[j], strongest[i]
			}
		}
	}
	if k > len(strongest) {
		k = len(strongest)
	}
	total := 0.0
	for _, f := range strongest[:k] {
		best := 1 << 30
		for _, g := range noisy {
			if d := f.X - g.X; d*d < best*best || best == 1<<30 {
				if d < 0 {
					d = -d
				}
				if d < best {
					best = d
				}
			}
		}
		total += float64(best)
	}
	return total / float64(k)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func fullDTW(x, y []float64) (float64, error) {
	return dtw.Distance(x, y, nil)
}

// RenderNoise formats the noise-robustness rows.
func RenderNoise(rows []NoiseRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Noise robustness (Gun, §3.1.2 claim)\n")
	fmt.Fprintf(&b, "%-8s %12s %13s %10s\n", "sigma", "featdrift", "pairsurvival", "disterr")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8g %12.2f %13.3f %10.4f\n", r.Sigma, r.FeatureDrift, r.PairSurvival, r.DistErr)
	}
	return b.String()
}
