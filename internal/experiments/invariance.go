package experiments

import (
	"fmt"
	"strings"

	"sdtw/internal/band"
	"sdtw/internal/core"
	"sdtw/internal/datasets"
	"sdtw/internal/match"
	"sdtw/internal/sift"
)

// InvarianceRow reports alignment quality under one invariance setting on
// an amplitude-perturbed workload.
type InvarianceRow struct {
	Setting string
	// AvgPairs is the mean number of consistent salient pairs per
	// same-class comparison.
	AvgPairs float64
	// DistErr is the mean (ac,aw) distance error against full DTW.
	DistErr float64
}

// Invariance exercises §3.1.2's claim that each invariance can be toggled
// independently: it scales the amplitudes of half the Gun series and
// evaluates matching with amplitude invariance on and off (descriptor
// normalisation and the τa bound).
func Invariance(seed int64) ([]InvarianceRow, error) {
	d := datasets.Gun(datasets.Config{Seed: seed, SeriesPerClass: 4})
	// Amplitude-perturb every second series by 1.8x: DTW values change,
	// but feature structure should still align when amplitude invariance
	// is on.
	for i := range d.Series {
		if i%2 == 1 {
			for j := range d.Series[i].Values {
				d.Series[i].Values[j] *= 1.8
			}
		}
	}
	settings := []struct {
		name      string
		invariant bool
		tauA      float64
	}{
		{"invariant, τa off", true, -1},
		{"invariant, τa=0.5", true, 0.5},
		{"variant, τa off", false, -1},
	}
	var rows []InvarianceRow
	for _, s := range settings {
		feat := sift.DefaultConfig()
		feat.AmplitudeInvariant = s.invariant
		matcher := match.DefaultConfig()
		matcher.MaxAmplitudeDiff = s.tauA
		engine := core.NewEngine(core.Options{
			Band:          band.Config{Strategy: band.AdaptiveCoreAdaptiveWidth},
			Features:      feat,
			Matcher:       matcher,
			CacheFeatures: true,
		})
		pairs, errSum, n := 0, 0.0, 0
		for i := 0; i+1 < d.Len(); i += 2 {
			res, err := engine.Distance(d.Series[i], d.Series[i+1])
			if err != nil {
				return nil, fmt.Errorf("experiments: invariance %s: %w", s.name, err)
			}
			pairs += res.Pairs
			full, err := fullDTW(d.Series[i].Values, d.Series[i+1].Values)
			if err != nil {
				return nil, err
			}
			if full > 0 {
				errSum += (res.Distance - full) / full
				n++
			}
		}
		row := InvarianceRow{Setting: s.name}
		if n > 0 {
			row.AvgPairs = float64(pairs) / float64(n)
			row.DistErr = errSum / float64(n)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderInvariance formats the invariance ablation.
func RenderInvariance(rows []InvarianceRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Amplitude-invariance ablation (Gun with 1.8x scaled halves)\n")
	fmt.Fprintf(&b, "%-20s %9s %10s\n", "setting", "avgpairs", "disterr")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s %9.1f %10.4f\n", r.Setting, r.AvgPairs, r.DistErr)
	}
	return b.String()
}
