package experiments

import (
	"strings"
	"testing"
)

// All experiment tests run at Small scale: the point is to verify the
// runners are wired correctly, not to reproduce the paper's numbers (the
// benchmark suite and cmd/sdtwbench do that at full scale).

func TestTable1(t *testing.T) {
	rows, err := Table1(Full, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	want := []Table1Row{
		{"Gun", 150, 50, 2},
		{"Trace", 275, 100, 4},
		{"50Words", 270, 450, 50},
	}
	for i, w := range want {
		if rows[i] != w {
			t.Fatalf("row %d = %+v, want %+v", i, rows[i], w)
		}
	}
	out := RenderTable1(rows)
	for _, name := range []string{"Gun", "Trace", "50Words"} {
		if !strings.Contains(out, name) {
			t.Fatalf("rendered table missing %s:\n%s", name, out)
		}
	}
}

func TestTable2(t *testing.T) {
	rows, err := Table2(Small, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	for _, r := range rows {
		if r.Total <= 0 {
			t.Fatalf("%s has no salient points", r.Dataset)
		}
		if r.Total != r.Fine+r.Medium+r.Rough {
			t.Fatalf("%s total %v != %v+%v+%v", r.Dataset, r.Total, r.Fine, r.Medium, r.Rough)
		}
		if r.ExtractPerSeries <= 0 {
			t.Fatalf("%s extraction time not measured", r.Dataset)
		}
	}
	// The paper's qualitative profile: Gun's rough share beats 50Words'.
	gunRough := rows[0].Rough / rows[0].Total
	wordsRough := rows[2].Rough / rows[2].Total
	if gunRough <= wordsRough {
		t.Fatalf("rough-share ordering violated: Gun %.3f <= 50Words %.3f", gunRough, wordsRough)
	}
	if out := RenderTable2(rows); !strings.Contains(out, "Fine") {
		t.Fatalf("rendered table 2 malformed:\n%s", out)
	}
}

func TestStandardAlgorithmsGrid(t *testing.T) {
	algos := StandardAlgorithms()
	if len(algos) != 9 {
		t.Fatalf("standard grid has %d algorithms, want 9", len(algos))
	}
	names := map[string]bool{}
	for _, a := range algos {
		names[a.Name] = true
	}
	for _, want := range []string{"fc,fw 6%", "fc,fw 10%", "fc,fw 20%", "fc,aw",
		"ac,fw 6%", "ac,fw 10%", "ac,fw 20%", "ac,aw", "ac2,aw"} {
		if !names[want] {
			t.Fatalf("missing algorithm %q", want)
		}
	}
}

func TestWithDescriptorBins(t *testing.T) {
	a := AdaptiveAlgorithms()[0].WithDescriptorBins(16)
	if a.Opts.Features.DescriptorBins != 16 {
		t.Fatalf("descriptor bins = %d", a.Opts.Features.DescriptorBins)
	}
	// The original must stay untouched (value semantics).
	if AdaptiveAlgorithms()[0].Opts.Features.DescriptorBins == 16 {
		t.Fatal("WithDescriptorBins mutated the source")
	}
}

func TestFig13SmallGun(t *testing.T) {
	results, err := Fig13("Gun", Small, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 9 {
		t.Fatalf("got %d results, want 9", len(results))
	}
	byName := map[string]AlgoResult{}
	for _, r := range results {
		byName[r.Algorithm] = r
		if r.Top5Acc < 0 || r.Top5Acc > 1 || r.Top10Acc < 0 || r.Top10Acc > 1 {
			t.Fatalf("%s accuracy out of range: %+v", r.Algorithm, r)
		}
		if r.CellsGain <= 0 || r.CellsGain >= 1 {
			t.Fatalf("%s cells gain out of range: %v", r.Algorithm, r.CellsGain)
		}
		if r.DistErr < 0 {
			t.Fatalf("%s negative distance error: %v", r.Algorithm, r.DistErr)
		}
	}
	// Paper Fig 13/14: (ac,aw) is far more accurate than (fc,fw 6%) on
	// Gun, and widening a fixed band improves accuracy.
	if byName["ac,aw"].DistErr >= byName["fc,fw 6%"].DistErr {
		t.Fatalf("(ac,aw) error %v not below (fc,fw 6%%) %v",
			byName["ac,aw"].DistErr, byName["fc,fw 6%"].DistErr)
	}
	if byName["fc,fw 20%"].DistErr >= byName["fc,fw 6%"].DistErr {
		t.Fatalf("wider fixed band not more accurate")
	}
	if out := RenderFig13(results); !strings.Contains(out, "ac,aw") {
		t.Fatalf("rendered fig13 malformed:\n%s", out)
	}
	if out := RenderFig14(results); !strings.Contains(out, "disterr") {
		t.Fatalf("rendered fig14 malformed:\n%s", out)
	}
}

func TestFig15SmallTrace(t *testing.T) {
	results, err := Fig15(Small, 42)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AlgoResult{}
	for _, r := range results {
		if r.Dataset != "Trace" {
			t.Fatalf("Fig15 ran on %s", r.Dataset)
		}
		byName[r.Algorithm] = r
		if r.IntraClassErr < 0 {
			t.Fatalf("%s negative intra-class error", r.Algorithm)
		}
	}
	// Paper Fig 15: fixed-core algorithms are especially error prone on
	// intra-class Trace pairs; adaptive cores bring errors far down.
	if byName["ac,aw"].IntraClassErr >= byName["fc,fw 6%"].IntraClassErr {
		t.Fatalf("(ac,aw) intra-class error %v not below (fc,fw 6%%) %v",
			byName["ac,aw"].IntraClassErr, byName["fc,fw 6%"].IntraClassErr)
	}
	if out := RenderFig15(results); !strings.Contains(out, "intra-disterr") {
		t.Fatalf("rendered fig15 malformed:\n%s", out)
	}
}

func TestFig16SmallWords(t *testing.T) {
	if testing.Short() {
		t.Skip("the 50-class workload needs a 450x450 distance matrix even at Small scale")
	}
	results, err := Fig16(Small, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Dataset != "50Words" {
			t.Fatalf("Fig16 ran on %s", r.Dataset)
		}
		if r.Cls5Acc < 0 || r.Cls5Acc > 1 || r.Cls10Acc < 0 || r.Cls10Acc > 1 {
			t.Fatalf("%s classification accuracy out of range", r.Algorithm)
		}
	}
	if out := RenderFig16(results); !strings.Contains(out, "cls-5") {
		t.Fatalf("rendered fig16 malformed:\n%s", out)
	}
}

func TestFig17Small(t *testing.T) {
	results, err := Fig17("Trace", Small, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(AdaptiveAlgorithms()) {
		t.Fatalf("got %d results", len(results))
	}
	for _, r := range results {
		if r.MatchShare <= 0 || r.MatchShare >= 1 {
			t.Fatalf("%s match share %v out of (0,1)", r.Algorithm, r.MatchShare)
		}
		if r.Timing.MatchTime <= 0 || r.Timing.DPTime <= 0 {
			t.Fatalf("%s stage timings missing", r.Algorithm)
		}
		if r.AvgPairs <= 0 {
			t.Fatalf("%s average pairs %v", r.Algorithm, r.AvgPairs)
		}
	}
	if out := RenderFig17(results); !strings.Contains(out, "match-share") {
		t.Fatalf("rendered fig17 malformed:\n%s", out)
	}
}

func TestFig18SmallSweep(t *testing.T) {
	points, err := Fig18("Gun", Small, 42, []int{8, 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2*len(AdaptiveAlgorithms()) {
		t.Fatalf("got %d sweep points", len(points))
	}
	seen := map[int]bool{}
	for _, p := range points {
		seen[p.Bins] = true
		if p.Result.DistErr < 0 {
			t.Fatalf("bins=%d %s negative error", p.Bins, p.Result.Algorithm)
		}
	}
	if !seen[8] || !seen[64] {
		t.Fatalf("sweep missing requested bins: %v", seen)
	}
	if out := RenderFig18(points); !strings.Contains(out, "bins") {
		t.Fatalf("rendered fig18 malformed:\n%s", out)
	}
}

func TestDatasetConfigScales(t *testing.T) {
	full := DatasetConfig("Gun", Full, 1)
	if full.SeriesPerClass != 0 {
		t.Fatalf("full scale overrides per-class count")
	}
	small := DatasetConfig("Gun", Small, 1)
	if small.SeriesPerClass == 0 || small.SeriesPerClass >= 25 {
		t.Fatalf("small scale per-class = %d", small.SeriesPerClass)
	}
	medium := DatasetConfig("50Words", Medium, 1)
	if medium.SeriesPerClass == 0 || medium.SeriesPerClass <= small.SeriesPerClass-3 {
		t.Fatalf("medium scale per-class = %d", medium.SeriesPerClass)
	}
}

func TestNewWorkloadSharesReference(t *testing.T) {
	w, err := NewWorkload("Gun", Small, 42)
	if err != nil {
		t.Fatal(err)
	}
	if w.Data.Name != "Gun" || w.Ref == nil {
		t.Fatalf("workload malformed: %+v", w)
	}
	if len(w.Ref.D) != w.Data.Len() {
		t.Fatalf("reference matrix size %d, data %d", len(w.Ref.D), w.Data.Len())
	}
}
