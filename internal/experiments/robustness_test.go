package experiments

import (
	"strings"
	"testing"
)

func TestNoiseRobustness(t *testing.T) {
	rows, err := NoiseRobustness(42, []float64{0.005, 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.FeatureDrift < 0 {
			t.Fatalf("negative drift: %+v", r)
		}
		if r.PairSurvival < 0 || r.PairSurvival > 1 {
			t.Fatalf("pair survival out of range: %+v", r)
		}
	}
	// Low-noise drift must stay within a feature scope or two; the paper
	// claims detection is robust against noise.
	if rows[0].FeatureDrift > 15 {
		t.Fatalf("low-noise feature drift %v too large", rows[0].FeatureDrift)
	}
	if out := RenderNoise(rows); !strings.Contains(out, "featdrift") {
		t.Fatalf("rendered noise table malformed:\n%s", out)
	}
}

func TestLearnedBaseline(t *testing.T) {
	rows, err := LearnedBaseline(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	byName := map[string]BaselineRow{}
	for _, r := range rows {
		byName[r.Method] = r
		if r.HoldoutAccuracy < 0 || r.HoldoutAccuracy > 1 {
			t.Fatalf("%s accuracy out of range: %v", r.Method, r.HoldoutAccuracy)
		}
	}
	if !byName["learned band (R-K)"].NeedsTraining {
		t.Fatal("learned band not flagged as training-dependent")
	}
	if byName["sDTW (ac,aw)"].NeedsTraining {
		t.Fatal("sDTW flagged as training-dependent")
	}
	// Structural constraints must be competitive on this workload.
	if byName["sDTW (ac,aw)"].HoldoutAccuracy < 0.7 {
		t.Fatalf("sDTW holdout accuracy %v too low", byName["sDTW (ac,aw)"].HoldoutAccuracy)
	}
	if out := RenderBaseline(rows); !strings.Contains(out, "needs-training") {
		t.Fatalf("rendered baseline malformed:\n%s", out)
	}
}

func TestInvariance(t *testing.T) {
	rows, err := Invariance(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	byName := map[string]InvarianceRow{}
	for _, r := range rows {
		byName[r.Setting] = r
	}
	// With amplitudes perturbed, the invariant configuration (with the
	// amplitude bound disabled) must find at least as many consistent
	// pairs as the strict τa configuration, which rejects cross-scale
	// matches outright.
	inv := byName["invariant, τa off"]
	strict := byName["invariant, τa=0.5"]
	if inv.AvgPairs < strict.AvgPairs {
		t.Fatalf("invariance found fewer pairs than the τa-bounded setting: %v vs %v",
			inv.AvgPairs, strict.AvgPairs)
	}
	if out := RenderInvariance(rows); !strings.Contains(out, "avgpairs") {
		t.Fatalf("rendered invariance table malformed:\n%s", out)
	}
}
