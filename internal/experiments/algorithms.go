// Package experiments contains one runner per table and figure of the
// paper's evaluation section (§4). Each runner generates (or accepts) a
// workload, computes the reference full-DTW distance matrix and the
// constrained matrices of every algorithm under test, and reports the
// paper's measures: top-k retrieval accuracy, distance error, intra-class
// error, kNN classification agreement, time gain (wall clock) and cells
// gain (machine-independent). The runners are shared by cmd/sdtwbench and
// the repository's benchmark suite.
package experiments

import (
	"sdtw/internal/band"
	"sdtw/internal/core"
	"sdtw/internal/match"
	"sdtw/internal/sift"
)

// Algorithm is one constrained-DTW configuration under test, labeled as in
// the paper's figures (e.g. "fc,fw 10%").
type Algorithm struct {
	Name string
	Opts core.Options
}

// NewAlgorithm builds an algorithm from a band configuration with the
// paper's default feature and matcher settings.
func NewAlgorithm(name string, bandCfg band.Config) Algorithm {
	return Algorithm{
		Name: name,
		Opts: core.Options{
			Band:          bandCfg,
			Features:      sift.DefaultConfig(),
			Matcher:       match.DefaultConfig(),
			CacheFeatures: true,
		},
	}
}

// WithDescriptorBins returns a copy of the algorithm using the given
// descriptor length, for the Fig 18 sweep.
func (a Algorithm) WithDescriptorBins(bins int) Algorithm {
	a.Opts.Features.DescriptorBins = bins
	return a
}

// StandardAlgorithms returns the algorithm grid of Figures 13–17:
// (fc,fw) at 6/10/20%, (fc,aw) with the 20% lower bound, (ac,fw) at
// 6/10/20%, (ac,aw) and (ac2,aw). Full DTW is the reference, not a member.
func StandardAlgorithms() []Algorithm {
	return []Algorithm{
		NewAlgorithm("fc,fw 6%", band.Config{Strategy: band.FixedCoreFixedWidth, WidthFrac: 0.06}),
		NewAlgorithm("fc,fw 10%", band.Config{Strategy: band.FixedCoreFixedWidth, WidthFrac: 0.10}),
		NewAlgorithm("fc,fw 20%", band.Config{Strategy: band.FixedCoreFixedWidth, WidthFrac: 0.20}),
		NewAlgorithm("fc,aw", band.Config{Strategy: band.FixedCoreAdaptiveWidth}),
		NewAlgorithm("ac,fw 6%", band.Config{Strategy: band.AdaptiveCoreFixedWidth, WidthFrac: 0.06}),
		NewAlgorithm("ac,fw 10%", band.Config{Strategy: band.AdaptiveCoreFixedWidth, WidthFrac: 0.10}),
		NewAlgorithm("ac,fw 20%", band.Config{Strategy: band.AdaptiveCoreFixedWidth, WidthFrac: 0.20}),
		NewAlgorithm("ac,aw", band.Config{Strategy: band.AdaptiveCoreAdaptiveWidth}),
		NewAlgorithm("ac2,aw", band.Config{Strategy: band.AdaptiveCoreAdaptiveWidthAvg}),
	}
}

// AdaptiveAlgorithms returns the subset with matching overhead, used by
// Fig 17 (time breakdown) and Fig 18 (descriptor sweep).
func AdaptiveAlgorithms() []Algorithm {
	return []Algorithm{
		NewAlgorithm("ac,fw 10%", band.Config{Strategy: band.AdaptiveCoreFixedWidth, WidthFrac: 0.10}),
		NewAlgorithm("fc,aw", band.Config{Strategy: band.FixedCoreAdaptiveWidth}),
		NewAlgorithm("ac,aw", band.Config{Strategy: band.AdaptiveCoreAdaptiveWidth}),
		NewAlgorithm("ac2,aw", band.Config{Strategy: band.AdaptiveCoreAdaptiveWidthAvg}),
	}
}
