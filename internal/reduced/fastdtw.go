package reduced

import (
	"fmt"

	"sdtw/internal/series"

	"sdtw/internal/dtw"
)

// FastDTWResult carries the approximate distance, the warp path found at
// full resolution, and the total grid cells evaluated across all
// resolution levels.
type FastDTWResult struct {
	Distance float64
	Path     dtw.Path
	Cells    int
	// Levels is the number of resolution levels visited.
	Levels int
}

// minFastDTWSize is the grid side below which FastDTW solves exactly: the
// recursion bottoms out on a full dynamic program.
const minFastDTWSize = 16

// FastDTW computes an approximate DTW distance in linear time and space
// by recursively solving the problem at half resolution, projecting the
// coarse warp path onto the finer grid, widening it by radius cells, and
// refining within that band (Salvador & Chan 2007). radius < 0 selects
// the customary default of 1.
func FastDTW(x, y []float64, radius int, dist series.PointDistance) (FastDTWResult, error) {
	if len(x) == 0 || len(y) == 0 {
		return FastDTWResult{}, fmt.Errorf("reduced: empty input (len(x)=%d len(y)=%d)", len(x), len(y))
	}
	if radius < 0 {
		radius = 1
	}
	return fastDTW(x, y, radius, dist)
}

func fastDTW(x, y []float64, radius int, dist series.PointDistance) (FastDTWResult, error) {
	n, m := len(x), len(y)
	if n <= minFastDTWSize || m <= minFastDTWSize || n <= radius+2 || m <= radius+2 {
		pr, err := dtw.DistanceWithPath(x, y, dist)
		if err != nil {
			return FastDTWResult{}, err
		}
		return FastDTWResult{Distance: pr.Distance, Path: pr.Path, Cells: pr.Cells, Levels: 1}, nil
	}
	coarse, err := fastDTW(Halve(x), Halve(y), radius, dist)
	if err != nil {
		return FastDTWResult{}, err
	}
	band := ProjectPath(coarse.Path, n, m, radius)
	pr, err := dtw.BandedWithPath(x, y, band, dist)
	if err != nil {
		return FastDTWResult{}, fmt.Errorf("reduced: refining level %dx%d: %w", n, m, err)
	}
	return FastDTWResult{
		Distance: pr.Distance,
		Path:     pr.Path,
		Cells:    coarse.Cells + pr.Cells,
		Levels:   coarse.Levels + 1,
	}, nil
}

// CombinedResult reports the outcome of running the multi-resolution
// projection intersected with an sDTW band.
type CombinedResult struct {
	Distance float64
	// Cells counts full-resolution cells filled plus all coarse-level
	// work.
	Cells int
	// BandCells is the final intersected band's size, for comparing
	// against either technique alone.
	BandCells int
}

// Combined refines the FastDTW projected band *intersected* with a
// salient-feature band (the sDTW constraints), realising the combination
// the paper sketches in §1.1/§2: multi-resolution search confined to the
// locally relevant region. The sdtwBand must constrain the full
// len(x)×len(y) grid.
func Combined(x, y []float64, radius int, sdtwBand dtw.Band, dist series.PointDistance) (CombinedResult, error) {
	if len(x) == 0 || len(y) == 0 {
		return CombinedResult{}, fmt.Errorf("reduced: empty input (len(x)=%d len(y)=%d)", len(x), len(y))
	}
	if radius < 0 {
		radius = 1
	}
	n, m := len(x), len(y)
	if n <= minFastDTWSize || m <= minFastDTWSize {
		d, cells, err := dtw.Banded(x, y, sdtwBand, dist)
		if err != nil {
			return CombinedResult{}, err
		}
		return CombinedResult{Distance: d, Cells: cells, BandCells: sdtwBand.Cells()}, nil
	}
	coarse, err := fastDTW(Halve(x), Halve(y), radius, dist)
	if err != nil {
		return CombinedResult{}, err
	}
	projected := ProjectPath(coarse.Path, n, m, radius)
	combined, err := Intersect(projected, sdtwBand)
	if err != nil {
		return CombinedResult{}, err
	}
	d, cells, err := dtw.Banded(x, y, combined, dist)
	if err != nil {
		return CombinedResult{}, fmt.Errorf("reduced: combined refinement: %w", err)
	}
	return CombinedResult{
		Distance:  d,
		Cells:     coarse.Cells + cells,
		BandCells: combined.Cells(),
	}, nil
}
