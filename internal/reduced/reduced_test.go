package reduced

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sdtw/internal/band"
	"sdtw/internal/dtw"
	"sdtw/internal/match"
	"sdtw/internal/series"
	"sdtw/internal/sift"
)

func TestPAABasics(t *testing.T) {
	v := []float64{1, 3, 5, 7, 9, 11}
	got := PAA(v, 2)
	want := []float64{2, 6, 10}
	if len(got) != len(want) {
		t.Fatalf("PAA = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PAA = %v, want %v", got, want)
		}
	}
}

func TestPAAUnevenTail(t *testing.T) {
	v := []float64{2, 4, 6, 8, 10}
	got := PAA(v, 2)
	want := []float64{3, 7, 10} // last window has a single sample
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PAA = %v, want %v", got, want)
		}
	}
}

func TestPAAFactorOneCopies(t *testing.T) {
	v := []float64{1, 2, 3}
	got := PAA(v, 1)
	got[0] = 99
	if v[0] == 99 {
		t.Fatal("PAA(1) aliases input")
	}
}

func TestPAAIntoMatchesPAA(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	scratch := make([]float64, 512)
	for _, n := range []int{1, 2, 7, 100, 511} {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		for _, factor := range []int{0, 1, 2, 3, 7, n, n + 5} {
			want := PAA(v, factor)
			got := PAAInto(scratch, v, factor)
			if len(got) != len(want) || len(want) != PAALen(n, factor) {
				t.Fatalf("PAAInto(n=%d, factor=%d) = %d samples, want %d", n, factor, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("PAAInto(n=%d, factor=%d)[%d] = %v, want %v", n, factor, i, got[i], want[i])
				}
			}
		}
	}
}

// TestPAAIntoZeroAlloc pins the scratch-reusing form at zero
// allocations on both the averaging path and the factor<=1 copy path,
// matching the lower.Kim hot-path discipline.
func TestPAAIntoZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	v := make([]float64, 1000)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	scratch := make([]float64, len(v))
	for _, factor := range []int{1, 2, 8} {
		factor := factor
		allocs := testing.AllocsPerRun(100, func() {
			PAAInto(scratch, v, factor)
		})
		if allocs != 0 {
			t.Errorf("PAAInto(factor=%d) allocates %v times per call, want 0", factor, allocs)
		}
	}
}

func TestPAAPreservesMean(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(100)
		v := make([]float64, n)
		sum := 0.0
		for i := range v {
			v[i] = rng.NormFloat64()
			sum += v[i]
		}
		// With factor dividing n exactly, the PAA total mean equals the
		// original mean.
		factor := 2
		for n%factor != 0 {
			n--
			v = v[:n]
		}
		sum = 0
		for _, x := range v {
			sum += x
		}
		r := PAA(v, factor)
		rsum := 0.0
		for _, x := range r {
			rsum += x
		}
		return math.Abs(sum/float64(len(v))-rsum/float64(len(r))) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestHalveLength(t *testing.T) {
	if got := len(Halve(make([]float64, 11))); got != 6 {
		t.Fatalf("Halve(11) length = %d, want 6", got)
	}
}

func TestProjectPathCoversScaledPath(t *testing.T) {
	// A coarse diagonal path must project onto a band containing the
	// fine diagonal.
	coarse := dtw.Path{}
	for k := 0; k < 10; k++ {
		coarse = append(coarse, dtw.Step{I: k, J: k})
	}
	b := ProjectPath(coarse, 20, 20, 0)
	for i := 0; i < 20; i++ {
		if !b.Contains(i, i) {
			t.Fatalf("projected band misses diagonal at %d: [%d,%d]", i, b.Lo[i], b.Hi[i])
		}
	}
}

func TestProjectPathRadiusWidens(t *testing.T) {
	coarse := dtw.Path{}
	for k := 0; k < 10; k++ {
		coarse = append(coarse, dtw.Step{I: k, J: k})
	}
	tight := ProjectPath(coarse, 20, 20, 0)
	wide := ProjectPath(coarse, 20, 20, 2)
	if wide.Cells() <= tight.Cells() {
		t.Fatalf("radius did not widen band: %d vs %d", wide.Cells(), tight.Cells())
	}
	for i := range tight.Lo {
		if wide.Lo[i] > tight.Lo[i] || wide.Hi[i] < tight.Hi[i] {
			t.Fatal("radius-widened band does not contain the tight band")
		}
	}
}

func TestProjectPathOddLengths(t *testing.T) {
	// Fine grids with odd sizes leave a final row/column the coarse path
	// cannot reach by doubling; projection must still produce a valid,
	// connected band.
	coarse := dtw.Path{}
	for k := 0; k < 8; k++ {
		coarse = append(coarse, dtw.Step{I: k, J: k})
	}
	b := ProjectPath(coarse, 17, 19, 1)
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 17)
	y := make([]float64, 19)
	if _, _, err := dtw.Banded(x, y, b, nil); err != nil {
		t.Fatalf("projected band not usable: %v", err)
	}
}

func TestIntersectBasics(t *testing.T) {
	a := dtw.SakoeChiba(30, 30, 0.4)
	b := dtw.SakoeChiba(30, 30, 0.2)
	got, err := Intersect(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Intersection with a superset band is (up to normalization repairs)
	// the smaller band.
	if got.Cells() > b.Cells() {
		t.Fatalf("intersection larger than the narrower band: %d vs %d", got.Cells(), b.Cells())
	}
	if _, err := Intersect(a, dtw.SakoeChiba(20, 30, 0.2)); err == nil {
		t.Fatal("incompatible intersection accepted")
	}
}

func TestIntersectDisjointRowsRepaired(t *testing.T) {
	a := dtw.Band{Lo: []int{0, 0, 0, 0}, Hi: []int{1, 1, 1, 3}, M: 4}
	b := dtw.Band{Lo: []int{0, 3, 3, 3}, Hi: []int{3, 3, 3, 3}, M: 4}
	got, err := Intersect(a.Normalize(), b.Normalize())
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 4)
	y := make([]float64, 4)
	if _, _, err := dtw.Banded(x, y, got, nil); err != nil {
		t.Fatalf("repaired intersection unusable: %v", err)
	}
}

func warpedPair(seed int64, n int) ([]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	base := make([]float64, n)
	for i := range base {
		x := float64(i)
		base[i] = series.GaussianBump(x, float64(n)*0.3, float64(n)*0.05, 1) -
			series.GaussianBump(x, float64(n)*0.7, float64(n)*0.06, 0.8)
	}
	w := series.ApplyWarp(base, series.RandomWarp(rng, 4, 0.4), n)
	return base, series.AddNoise(rng, w, 0.01)
}

func TestFastDTWSmallIsExact(t *testing.T) {
	x, y := warpedPair(1, 12) // below minFastDTWSize: exact
	res, err := FastDTW(x, y, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := dtw.Distance(x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Distance-exact) > 1e-12 {
		t.Fatalf("small FastDTW %v != exact %v", res.Distance, exact)
	}
	if res.Levels != 1 {
		t.Fatalf("small input recursed: %d levels", res.Levels)
	}
}

func TestFastDTWApproximatesExact(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		x, y := warpedPair(seed, 300)
		exact, err := dtw.Distance(x, y, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := FastDTW(x, y, 2, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Distance < exact-1e-9 {
			t.Fatalf("FastDTW underestimates: %v < %v", res.Distance, exact)
		}
		if exact > 0 && (res.Distance-exact)/exact > 1.0 {
			t.Fatalf("seed %d: FastDTW error too large: %v vs %v", seed, res.Distance, exact)
		}
		if err := res.Path.Validate(len(x), len(y)); err != nil {
			t.Fatalf("FastDTW path invalid: %v", err)
		}
		if res.Levels < 2 {
			t.Fatalf("no recursion on length-300 input")
		}
	}
}

func TestFastDTWPrunesWork(t *testing.T) {
	x, y := warpedPair(3, 600)
	res, err := FastDTW(x, y, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	full := len(x) * len(y)
	if res.Cells >= full/2 {
		t.Fatalf("FastDTW filled %d of %d cells", res.Cells, full)
	}
}

func TestFastDTWLargerRadiusMoreAccurate(t *testing.T) {
	sumNarrow, sumWide := 0.0, 0.0
	for seed := int64(0); seed < 8; seed++ {
		x, y := warpedPair(seed+50, 400)
		rNarrow, err := FastDTW(x, y, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		rWide, err := FastDTW(x, y, 6, nil)
		if err != nil {
			t.Fatal(err)
		}
		sumNarrow += rNarrow.Distance
		sumWide += rWide.Distance
	}
	if sumWide > sumNarrow+1e-9 {
		t.Fatalf("wider radius less accurate in aggregate: %v vs %v", sumWide, sumNarrow)
	}
}

func TestFastDTWEmptyInput(t *testing.T) {
	if _, err := FastDTW(nil, []float64{1}, 1, nil); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestCombinedRespectsBothConstraints(t *testing.T) {
	x, y := warpedPair(9, 300)
	// Build the sDTW band from real features.
	fx, err := sift.Extract(x, sift.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	fy, err := sift.Extract(y, sift.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	al, err := match.Match(fx, fy, len(x), len(y), match.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sdtwBand, err := band.Build(al, band.Config{Strategy: band.AdaptiveCoreAdaptiveWidth})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Combined(x, y, 1, sdtwBand, nil)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := dtw.Distance(x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Distance < exact-1e-9 {
		t.Fatalf("combined underestimates: %v < %v", res.Distance, exact)
	}
	// The combined band is no larger than the sDTW band alone.
	if res.BandCells > sdtwBand.Cells() {
		t.Fatalf("combined band (%d cells) exceeds sDTW band (%d)", res.BandCells, sdtwBand.Cells())
	}
}

func TestCombinedSmallInputFallsBack(t *testing.T) {
	x := make([]float64, 10)
	y := make([]float64, 10)
	b := dtw.FullBand(10, 10)
	res, err := Combined(x, y, 1, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Distance != 0 {
		t.Fatalf("zero series distance = %v", res.Distance)
	}
}

func TestCombinedEmptyInput(t *testing.T) {
	if _, err := Combined(nil, []float64{1}, 1, dtw.FullBand(1, 1), nil); err == nil {
		t.Fatal("empty input accepted")
	}
}
