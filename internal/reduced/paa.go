// Package reduced implements reduced-representation DTW: piecewise
// aggregate approximation (PAA), coarse-to-fine band projection, and the
// FastDTW algorithm of Salvador & Chan ("Toward accurate dynamic time
// warping in linear time and space", IDA 11(5), 2007) — the orthogonal
// speed-up family the paper discusses in §2.1.4 and explicitly notes sDTW
// "can naturally be implemented along with" (§1.1, §2). The Combined
// function realises that combination: the multi-resolution projected band
// intersected with the salient-feature band.
package reduced

import (
	"fmt"

	"sdtw/internal/dtw"
)

// PAALen returns the number of samples PAA produces for an input of
// length n at the given factor: ceil(n/factor), or n when factor <= 1.
func PAALen(n, factor int) int {
	if factor <= 1 {
		return n
	}
	return (n + factor - 1) / factor
}

// PAA reduces v to PAALen(len(v), factor) samples by averaging
// consecutive windows of the given factor (piecewise aggregate
// approximation). A factor <= 1 returns a copy. The result never
// aliases v; allocation-sensitive callers use PAAInto with their own
// scratch instead.
func PAA(v []float64, factor int) []float64 {
	return PAAInto(make([]float64, PAALen(len(v), factor)), v, factor)
}

// PAAInto is the scratch-reusing form of PAA: it writes the reduction
// into out, which must hold at least PAALen(len(v), factor) samples,
// and returns the filled prefix. It never allocates — a factor <= 1
// copies v into out rather than minting a fresh slice, so resolution
// ladders (FastDTW's recursion, sketch builders) can run the inner loop
// against one reusable buffer.
//
//sdtw:hotpath
func PAAInto(out, v []float64, factor int) []float64 {
	if factor <= 1 {
		out = out[:len(v)]
		copy(out, v)
		return out
	}
	n := (len(v) + factor - 1) / factor
	out = out[:n]
	for i := 0; i < n; i++ {
		lo := i * factor
		hi := lo + factor
		if hi > len(v) {
			hi = len(v)
		}
		sum := 0.0
		for j := lo; j < hi; j++ {
			sum += v[j]
		}
		out[i] = sum / float64(hi-lo)
	}
	return out
}

// Halve is the resolution step FastDTW uses: PAA with factor 2.
func Halve(v []float64) []float64 { return PAA(v, 2) }

// ProjectPath expands a warp path found on a half-resolution grid onto
// the (n, m) full-resolution grid and widens it by radius cells in every
// direction, producing the search band for the next refinement level.
// Each coarse cell (i,j) covers fine cells (2i..2i+1, 2j..2j+1). The
// result is normalized.
func ProjectPath(path dtw.Path, n, m, radius int) dtw.Band {
	if radius < 0 {
		radius = 0
	}
	b := dtw.NewBand(n, m)
	// Sentinels: rows untouched by the projection stay empty until the
	// radius expansion below.
	for i := range b.Lo {
		b.Lo[i] = m // empty sentinel
		b.Hi[i] = -1
	}
	mark := func(i, j int) {
		if i < 0 || i >= n {
			return
		}
		if j < 0 {
			j = 0
		}
		if j >= m {
			j = m - 1
		}
		if j < b.Lo[i] {
			b.Lo[i] = j
		}
		if j > b.Hi[i] {
			b.Hi[i] = j
		}
	}
	for _, s := range path {
		for di := 0; di < 2; di++ {
			for dj := 0; dj < 2; dj++ {
				mark(2*s.I+di, 2*s.J+dj)
			}
		}
	}
	// Repair rows the projection missed (odd lengths can leave the last
	// row untouched): inherit the nearest populated neighbour.
	lastLo, lastHi := 0, 0
	for i := 0; i < n; i++ {
		if b.Hi[i] < b.Lo[i] {
			b.Lo[i], b.Hi[i] = lastLo, lastHi
		}
		lastLo, lastHi = b.Lo[i], b.Hi[i]
	}
	if radius > 0 {
		expandBand(&b, radius)
	}
	return b.Normalize()
}

// expandBand widens every row interval by radius columns and lets each
// row inherit its vertical neighbours' intervals within radius rows,
// FastDTW's square-radius expansion.
func expandBand(b *dtw.Band, radius int) {
	n := len(b.Lo)
	lo := make([]int, n)
	hi := make([]int, n)
	for i := 0; i < n; i++ {
		l, h := b.Lo[i], b.Hi[i]
		for d := -radius; d <= radius; d++ {
			if i+d < 0 || i+d >= n {
				continue
			}
			if b.Lo[i+d] < l {
				l = b.Lo[i+d]
			}
			if b.Hi[i+d] > h {
				h = b.Hi[i+d]
			}
		}
		lo[i] = l - radius
		hi[i] = h + radius
	}
	copy(b.Lo, lo)
	copy(b.Hi, hi)
}

// Intersect returns the row-wise intersection of two bands over the same
// grid, normalized so the result always admits a warp path (rows whose
// intervals are disjoint collapse to the nearest feasible cells and are
// re-bridged). Used to combine a multi-resolution projected band with
// sDTW's locally relevant constraints.
func Intersect(a, b dtw.Band) (dtw.Band, error) {
	if len(a.Lo) != len(b.Lo) || a.M != b.M {
		return dtw.Band{}, fmt.Errorf("reduced: intersecting incompatible bands (%dx%d vs %dx%d)",
			len(a.Lo), a.M, len(b.Lo), b.M)
	}
	out := dtw.NewBand(len(a.Lo), a.M)
	for i := range a.Lo {
		lo := a.Lo[i]
		if b.Lo[i] > lo {
			lo = b.Lo[i]
		}
		hi := a.Hi[i]
		if b.Hi[i] < hi {
			hi = b.Hi[i]
		}
		if hi < lo {
			// Disjoint row: keep the midpoint between the two intervals
			// so Normalize can re-bridge a thin corridor.
			mid := (a.Lo[i] + a.Hi[i] + b.Lo[i] + b.Hi[i]) / 4
			lo, hi = mid, mid
		}
		out.Lo[i], out.Hi[i] = lo, hi
	}
	return out.Normalize(), nil
}
