// Package serve implements the HTTP (JSON) surface of the sdtwd search
// service: search/add/remove/stats endpoints over a sharded index,
// request admission with bounded in-flight searches and a bounded wait
// queue (429 on overload), and graceful drain — in-flight searches run
// to completion while the health check flips unhealthy, with a hard
// deadline that cancels the remaining dynamic programs through the
// cancellation already threaded into the DP.
//
// The package is separate from cmd/sdtwd so the benchmark harness and
// the drain tests can run the exact serving path in-process.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"sdtw"
)

// Config tunes a Server.
type Config struct {
	// MaxInflight bounds the searches executing concurrently; further
	// searches wait in the admission queue. <= 0 means GOMAXPROCS.
	MaxInflight int
	// MaxQueue bounds the searches waiting for an in-flight slot; beyond
	// it the server answers 429 immediately (backpressure, not
	// buffering). <= 0 means 4×MaxInflight.
	MaxQueue int
	// DefaultK answers search requests that set neither k nor threshold.
	// <= 0 means 1.
	DefaultK int
}

// Server is the HTTP serving layer over one sharded index. Create with
// New, mount Handler, and on shutdown call StartDrain before
// http.Server.Shutdown (and CancelInflight once the drain deadline
// expires).
type Server struct {
	ix  *sdtw.ShardedIndex
	cfg Config

	// sem holds one token per in-flight search; waiting counts searches
	// queued for a token. Mutations are not admission-controlled: they
	// are cheap relative to searches and arrive at control-plane rates.
	sem     chan struct{}
	waiting atomic.Int64

	// base is cancelled by CancelInflight to stop still-running dynamic
	// programs at the drain deadline.
	base     context.Context
	cancel   context.CancelFunc
	draining atomic.Bool

	searches, adds, removes, rejected atomic.Int64
}

// New builds a server over ix.
func New(ix *sdtw.ShardedIndex, cfg Config) *Server {
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 4 * cfg.MaxInflight
	}
	if cfg.DefaultK <= 0 {
		cfg.DefaultK = 1
	}
	base, cancel := context.WithCancel(context.Background())
	return &Server{
		ix:     ix,
		cfg:    cfg,
		sem:    make(chan struct{}, cfg.MaxInflight),
		base:   base,
		cancel: cancel,
	}
}

// Handler returns the service's routes:
//
//	POST /v1/search   {"values":[...], "id":"", "k":5, "threshold":1.5, "workers":0}
//	POST /v1/add      {"id":"s-1", "label":0, "values":[...]}
//	POST /v1/remove   {"id":"s-1"}
//	GET  /v1/stats
//	GET  /healthz
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/search", s.handleSearch)
	mux.HandleFunc("POST /v1/add", s.handleAdd)
	mux.HandleFunc("POST /v1/remove", s.handleRemove)
	mux.HandleFunc("POST /v1/compact", s.handleCompact)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// StartDrain flips the health check unhealthy so load balancers steer
// new traffic away; already-admitted work keeps running. Call before
// http.Server.Shutdown.
func (s *Server) StartDrain() { s.draining.Store(true) }

// CancelInflight cancels every in-flight search's dynamic programs — the
// hard stop after the drain deadline. The server stays cancelled; it is
// meant to exit next.
func (s *Server) CancelInflight() { s.cancel() }

// Draining reports whether StartDrain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// SearchRequest is the /v1/search body.
type SearchRequest struct {
	// ID optionally names the query; an indexed series sharing it is
	// excluded from the results (self-exclusion).
	ID string `json:"id,omitempty"`
	// Values is the query series.
	Values []float64 `json:"values"`
	// K requests the k nearest neighbours. 0 with no threshold means the
	// server's default; 0 with a threshold means every neighbour within
	// it (range search).
	K int `json:"k,omitempty"`
	// Threshold restricts results to distances <= it (and seeds the
	// pruning cascade). Absent means no limit; an explicit 0 is honoured
	// (exact matches only).
	Threshold *float64 `json:"threshold,omitempty"`
	// Workers overrides the per-search worker budget when positive.
	Workers int `json:"workers,omitempty"`
}

// HitJSON is one result of a search response.
type HitJSON struct {
	ID       string  `json:"id"`
	Label    int     `json:"label"`
	Distance float64 `json:"distance"`
}

// SearchStatsJSON is the cascade accounting of one search response.
type SearchStatsJSON struct {
	Candidates   int     `json:"candidates"`
	PrunedSketch int     `json:"pruned_sketch"`
	PrunedKim    int     `json:"pruned_kim"`
	PrunedKeogh  int     `json:"pruned_keogh"`
	Evaluated    int     `json:"evaluated"`
	AbandonedDTW int     `json:"abandoned_dtw"`
	PruneRate    float64 `json:"prune_rate"`
	WallMS       float64 `json:"wall_ms"`
}

// SearchResponse is the /v1/search reply.
type SearchResponse struct {
	Hits  []HitJSON       `json:"hits"`
	Stats SearchStatsJSON `json:"stats"`
}

// AddRequest is the /v1/add body.
type AddRequest struct {
	ID     string    `json:"id"`
	Label  int       `json:"label,omitempty"`
	Values []float64 `json:"values"`
}

// RemoveRequest is the /v1/remove body.
type RemoveRequest struct {
	ID string `json:"id"`
}

// MutateResponse is the /v1/add and /v1/remove reply.
type MutateResponse struct {
	OK     bool `json:"ok"`
	Series int  `json:"series"`
}

// StatsResponse is the /v1/stats reply.
type StatsResponse struct {
	Series     int    `json:"series"`
	Shards     int    `json:"shards"`
	ShardSizes []int  `json:"shard_sizes"`
	Inflight   int    `json:"inflight"`
	Queued     int64  `json:"queued"`
	Searches   int64  `json:"searches"`
	Adds       int64  `json:"adds"`
	Removes    int64  `json:"removes"`
	Rejected   int64  `json:"rejected"`
	Draining   bool   `json:"draining"`
	Radius     int    `json:"radius"`
	Backend    string `json:"backend"`

	// Store-backed indexes additionally report their segment-store shape;
	// all four are zero for in-RAM (gob-loaded or freshly built) indexes.
	StoreBacked bool `json:"store_backed"`
	Segments    int  `json:"segments,omitempty"`
	Tombstones  int  `json:"tombstones,omitempty"`
	SketchWidth int  `json:"sketch_width,omitempty"`

	// Degraded reports quarantined segments holding records back from
	// serving; Health and ShardHealth carry the damage detail (only for
	// store-backed indexes).
	Degraded    bool              `json:"degraded"`
	Health      *StoreHealthJSON  `json:"health,omitempty"`
	ShardHealth []StoreHealthJSON `json:"shard_health,omitempty"`
}

// StoreHealthJSON mirrors sdtw.StoreHealth on the stats and health
// replies.
type StoreHealthJSON struct {
	Quarantined        int   `json:"quarantined"`
	QuarantinedRecords int   `json:"quarantined_records"`
	RecoveredRecords   int   `json:"recovered_records"`
	TruncatedBytes     int64 `json:"truncated_bytes"`
	OrphansSwept       int   `json:"orphans_swept"`
}

// healthJSON lowers a store health onto its wire form.
func healthJSON(h sdtw.StoreHealth) StoreHealthJSON {
	return StoreHealthJSON{
		Quarantined:        h.Quarantined,
		QuarantinedRecords: h.QuarantinedRecords,
		RecoveredRecords:   h.RecoveredRecords,
		TruncatedBytes:     h.TruncatedBytes,
		OrphansSwept:       h.OrphansSwept,
	}
}

// CompactResponse is the /v1/compact reply.
type CompactResponse struct {
	OK          bool `json:"ok"`
	Segments    int  `json:"segments"`
	LiveRecords int  `json:"live_records"`
}

// errorResponse is every error reply: {"error": "..."}.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// statusFor maps the library's sentinel errors onto HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, sdtw.ErrUnknownID):
		return http.StatusNotFound
	case errors.Is(err, sdtw.ErrDuplicateID):
		return http.StatusConflict
	case errors.Is(err, sdtw.ErrNoID),
		errors.Is(err, sdtw.ErrEmptySeries),
		errors.Is(err, sdtw.ErrBadK),
		errors.Is(err, sdtw.ErrLengthMismatch),
		errors.Is(err, sdtw.ErrEmptyCollection):
		return http.StatusBadRequest
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// Drain deadline or client disconnect stopped the DP.
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// admit acquires an in-flight slot, waiting in the bounded queue if the
// server is saturated. It returns a release function, or an HTTP status
// explaining the rejection.
func (s *Server) admit(ctx context.Context) (func(), int, error) {
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, 0, nil
	default:
	}
	if s.waiting.Add(1) > int64(s.cfg.MaxQueue) {
		s.waiting.Add(-1)
		s.rejected.Add(1)
		return nil, http.StatusTooManyRequests,
			fmt.Errorf("over capacity: %d searches in flight and %d queued", s.cfg.MaxInflight, s.cfg.MaxQueue)
	}
	defer s.waiting.Add(-1)
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, 0, nil
	case <-ctx.Done():
		return nil, http.StatusServiceUnavailable, fmt.Errorf("cancelled while queued: %w", ctx.Err())
	}
}

// requestCtx derives the context a search runs under: the request's own
// (client disconnects cancel the DP) joined with the server's base (the
// drain deadline cancels every in-flight DP at once).
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(r.Context())
	stop := context.AfterFunc(s.base, cancel)
	return ctx, func() { stop(); cancel() }
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req SearchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding search request: %w", err))
		return
	}
	if req.K < 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("k must be >= 0, got %d", req.K))
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	release, status, err := s.admit(ctx)
	if err != nil {
		writeError(w, status, err)
		return
	}
	defer release()

	opts := make([]sdtw.SearchOption, 0, 3)
	switch {
	case req.K > 0:
		opts = append(opts, sdtw.WithK(req.K))
	case req.Threshold == nil:
		opts = append(opts, sdtw.WithK(s.cfg.DefaultK))
	}
	if req.Threshold != nil {
		opts = append(opts, sdtw.WithThreshold(*req.Threshold))
	}
	if req.Workers > 0 {
		opts = append(opts, sdtw.WithWorkers(req.Workers))
	}
	query := sdtw.Series{ID: req.ID, Label: -1, Values: req.Values}
	hits, stats, err := s.ix.Search(ctx, query, opts...)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	s.searches.Add(1)
	resp := SearchResponse{
		Hits: make([]HitJSON, len(hits)),
		Stats: SearchStatsJSON{
			Candidates:   stats.Candidates,
			PrunedSketch: stats.PrunedSketch,
			PrunedKim:    stats.PrunedKim,
			PrunedKeogh:  stats.PrunedKeogh,
			Evaluated:    stats.Evaluated,
			AbandonedDTW: stats.AbandonedDTW,
			PruneRate:    stats.PruneRate(),
			WallMS:       float64(stats.WallTime.Microseconds()) / 1000,
		},
	}
	for i, h := range hits {
		resp.Hits[i] = HitJSON{ID: h.ID, Label: h.Label, Distance: h.Distance}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleAdd(w http.ResponseWriter, r *http.Request) {
	var req AddRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding add request: %w", err))
		return
	}
	s2 := sdtw.NewSeries(req.ID, req.Label, req.Values)
	if err := s2.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.ix.Add(s2); err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	s.adds.Add(1)
	writeJSON(w, http.StatusOK, MutateResponse{OK: true, Series: s.ix.Len()})
}

func (s *Server) handleRemove(w http.ResponseWriter, r *http.Request) {
	var req RemoveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding remove request: %w", err))
		return
	}
	if err := s.ix.Remove(req.ID); err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	s.removes.Add(1)
	writeJSON(w, http.StatusOK, MutateResponse{OK: true, Series: s.ix.Len()})
}

func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	if err := s.ix.Compact(); err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, sdtw.ErrNotStoreBacked) {
			status = http.StatusConflict
		}
		writeError(w, status, err)
		return
	}
	st, err := s.ix.StoreStats()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, CompactResponse{OK: true, Segments: st.Segments, LiveRecords: st.LiveRecords})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	backend := "engine"
	if s.ix.Radius() >= 0 {
		backend = "windowed"
	}
	var storeStats sdtw.StoreStats
	if s.ix.StoreBacked() {
		if st, err := s.ix.StoreStats(); err == nil {
			storeStats = st
		}
	}
	resp := StatsResponse{
		Series:     s.ix.Len(),
		Shards:     s.ix.Shards(),
		ShardSizes: s.ix.ShardSizes(),
		Inflight:   len(s.sem),
		Queued:     s.waiting.Load(),
		Searches:   s.searches.Load(),
		Adds:       s.adds.Load(),
		Removes:    s.removes.Load(),
		Rejected:   s.rejected.Load(),
		Draining:   s.draining.Load(),
		Radius:     s.ix.Radius(),
		Backend:    backend,

		StoreBacked: s.ix.StoreBacked(),
		Segments:    storeStats.Segments,
		Tombstones:  storeStats.Tombstones,
		SketchWidth: storeStats.SketchWidth,
		Degraded:    storeStats.Health.Degraded(),
	}
	if s.ix.StoreBacked() {
		h := healthJSON(storeStats.Health)
		resp.Health = &h
		resp.ShardHealth = make([]StoreHealthJSON, len(storeStats.ShardHealth))
		for i, sh := range storeStats.ShardHealth {
			resp.ShardHealth[i] = healthJSON(sh)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// HealthResponse is the /healthz reply. A degraded server is still
// healthy (load balancers keep routing to it — the survivors serve);
// degraded flags that quarantined records are unavailable so operators
// alert and repair. Only draining answers 503.
type HealthResponse struct {
	OK                  bool `json:"ok"`
	Degraded            bool `json:"degraded,omitempty"`
	QuarantinedSegments int  `json:"quarantined_segments,omitempty"`
	QuarantinedRecords  int  `json:"quarantined_records,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, errors.New("draining"))
		return
	}
	resp := HealthResponse{OK: true}
	if s.ix.StoreBacked() {
		if st, err := s.ix.StoreStats(); err == nil && st.Health.Degraded() {
			resp.Degraded = true
			resp.QuarantinedSegments = st.Health.Quarantined
			resp.QuarantinedRecords = st.Health.QuarantinedRecords
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// Run serves the handler on addr until ctx is cancelled, then drains:
// the listener closes, in-flight requests run to completion, and after
// drainTimeout any still-running dynamic programs are cancelled. It
// returns once the server has fully stopped — the wiring cmd/sdtwd and
// the drain tests share.
func (s *Server) Run(ctx context.Context, addr string, drainTimeout time.Duration, ready chan<- string) error {
	hs := &http.Server{Addr: addr, Handler: s.Handler()}
	return s.run(ctx, hs, drainTimeout, ready)
}

func (s *Server) run(ctx context.Context, hs *http.Server, drainTimeout time.Duration, ready chan<- string) error {
	ln, err := newListener(hs.Addr)
	if err != nil {
		return err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	if ready != nil {
		ready <- ln.Addr().String()
	}
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	s.StartDrain()
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	err = hs.Shutdown(drainCtx)
	if err != nil {
		// Drain deadline passed: stop the remaining dynamic programs and
		// close whatever connections are left.
		s.CancelInflight()
		closeCtx, cancel2 := context.WithTimeout(context.Background(), time.Second)
		defer cancel2()
		_ = hs.Shutdown(closeCtx)
		_ = hs.Close()
	}
	<-serveErr // hs.Serve has returned http.ErrServerClosed
	return err
}

func newListener(addr string) (net.Listener, error) {
	return net.Listen("tcp", addr)
}
