package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"sdtw"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *sdtw.Dataset) {
	t.Helper()
	d := sdtw.GunDataset(sdtw.DatasetConfig{Seed: 11, SeriesPerClass: 8})
	ix, err := sdtw.NewShardedIndex(d.Series, 3, sdtw.Options{
		Strategy:  sdtw.FixedCoreFixedWidth,
		WidthFrac: 0.10,
	})
	if err != nil {
		t.Fatalf("NewShardedIndex: %v", err)
	}
	return New(ix, cfg), d
}

func postJSON(t *testing.T, client *http.Client, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, buf.Bytes()
}

func TestEndpoints(t *testing.T) {
	srv, d := newTestServer(t, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := ts.Client()

	// Search: explicit k.
	q := d.Series[0]
	resp, body := postJSON(t, c, ts.URL+"/v1/search", SearchRequest{ID: q.ID, Values: q.Values, K: 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search: status %d: %s", resp.StatusCode, body)
	}
	var sr SearchResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(sr.Hits) != 3 {
		t.Fatalf("k=3 search returned %d hits", len(sr.Hits))
	}
	for _, h := range sr.Hits {
		if h.ID == q.ID {
			t.Fatalf("self-exclusion failed: query %q in hits", q.ID)
		}
	}
	if sr.Stats.Candidates == 0 || sr.Stats.WallMS < 0 {
		t.Fatalf("implausible stats: %+v", sr.Stats)
	}

	// Search: no k and no threshold means the server default (1).
	resp, body = postJSON(t, c, ts.URL+"/v1/search", SearchRequest{Values: q.Values})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("default-k search: status %d: %s", resp.StatusCode, body)
	}
	sr = SearchResponse{}
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(sr.Hits) != 1 {
		t.Fatalf("default search returned %d hits, want 1", len(sr.Hits))
	}

	// Search: an explicit threshold of 0 is honoured (exact matches only),
	// not mistaken for "unset" — the zero-value trap the server-side
	// DefaultParams/ThresholdSet plumbing exists to avoid.
	zero := 0.0
	resp, body = postJSON(t, c, ts.URL+"/v1/search", SearchRequest{Values: q.Values, Threshold: &zero})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("threshold-0 search: status %d: %s", resp.StatusCode, body)
	}
	sr = SearchResponse{}
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	for _, h := range sr.Hits {
		if h.Distance > 0 {
			t.Fatalf("threshold 0 returned distance %v", h.Distance)
		}
	}

	// Add, search for it, remove it.
	nv := append([]float64(nil), q.Values...)
	resp, body = postJSON(t, c, ts.URL+"/v1/add", AddRequest{ID: "fresh", Label: 9, Values: nv})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("add: status %d: %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, c, ts.URL+"/v1/search", SearchRequest{ID: q.ID, Values: q.Values, K: 1})
	sr = SearchResponse{}
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.StatusCode != http.StatusOK || len(sr.Hits) != 1 || sr.Hits[0].ID != "fresh" {
		t.Fatalf("added duplicate not nearest: %d %+v", resp.StatusCode, sr.Hits)
	}
	resp, body = postJSON(t, c, ts.URL+"/v1/remove", RemoveRequest{ID: "fresh"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("remove: status %d: %s", resp.StatusCode, body)
	}

	// Stats.
	resp, err := c.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	resp.Body.Close()
	if st.Series != len(d.Series) || st.Shards != 3 || st.Adds != 1 || st.Removes != 1 || st.Searches != 4 {
		t.Fatalf("stats: %+v", st)
	}
	total := 0
	for _, n := range st.ShardSizes {
		total += n
	}
	if total != st.Series {
		t.Fatalf("shard sizes %v do not sum to %d", st.ShardSizes, st.Series)
	}

	// Healthz.
	resp, err = c.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()
}

func TestErrorMapping(t *testing.T) {
	srv, d := newTestServer(t, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := ts.Client()
	q := d.Series[0]

	cases := []struct {
		name   string
		path   string
		body   any
		status int
	}{
		{"remove unknown", "/v1/remove", RemoveRequest{ID: "nope"}, http.StatusNotFound},
		{"remove empty id", "/v1/remove", RemoveRequest{}, http.StatusBadRequest},
		{"add duplicate", "/v1/add", AddRequest{ID: d.Series[1].ID, Values: q.Values}, http.StatusConflict},
		{"add empty id", "/v1/add", AddRequest{Values: q.Values}, http.StatusBadRequest},
		{"add empty values", "/v1/add", AddRequest{ID: "x"}, http.StatusBadRequest},
		{"search empty query", "/v1/search", SearchRequest{K: 1}, http.StatusBadRequest},
		{"search negative k", "/v1/search", SearchRequest{Values: q.Values, K: -2}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, c, ts.URL+tc.path, tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.status, body)
		}
		var er errorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
			t.Errorf("%s: error body %q not {\"error\":...}", tc.name, body)
		}
	}

	// Malformed JSON.
	resp, err := c.Post(ts.URL+"/v1/search", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatalf("malformed: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d, want 400", resp.StatusCode)
	}

	// Wrong method.
	resp, err = c.Get(ts.URL + "/v1/search")
	if err != nil {
		t.Fatalf("GET search: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/search: status %d, want 405", resp.StatusCode)
	}
}

// TestBackpressure saturates the in-flight slots and the wait queue by
// holding the admission semaphore directly, then checks the server sheds
// the overflow with 429 instead of buffering without bound.
func TestBackpressure(t *testing.T) {
	srv, d := newTestServer(t, Config{MaxInflight: 1, MaxQueue: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	q := d.Series[0]

	srv.sem <- struct{}{} // the one in-flight slot is now busy

	// One search fits in the queue; it blocks until the slot frees.
	queued := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/search", SearchRequest{Values: q.Values, K: 1})
		queued <- resp.StatusCode
	}()
	waitFor(t, func() bool { return srv.waiting.Load() == 1 }, "search to queue")

	// The next search overflows the queue: immediate 429.
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/search", SearchRequest{Values: q.Values, K: 1})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow search: status %d, want 429 (%s)", resp.StatusCode, body)
	}
	if srv.rejected.Load() != 1 {
		t.Fatalf("rejected counter = %d, want 1", srv.rejected.Load())
	}

	// Freeing the slot lets the queued search run to completion.
	<-srv.sem
	select {
	case code := <-queued:
		if code != http.StatusOK {
			t.Fatalf("queued search: status %d, want 200", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("queued search never completed")
	}
}

// TestDrainCompletesInflight is the graceful-drain acceptance test: with
// a search admitted and another queued, cancelling the run context (what
// SIGTERM does in cmd/sdtwd) must close the listener and flip /healthz,
// yet both searches complete with full results before Run returns — and
// no goroutines leak.
func TestDrainCompletesInflight(t *testing.T) {
	defer checkNoLeaks(t, runtime.NumGoroutine())

	srv, d := newTestServer(t, Config{MaxInflight: 1, MaxQueue: 2})
	q := d.Series[0]

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	runDone := make(chan error, 1)
	go func() { runDone <- srv.Run(ctx, "127.0.0.1:0", 30*time.Second, ready) }()
	base := "http://" + <-ready

	srv.sem <- struct{}{} // pin the slot so the next search queues

	searchDone := make(chan SearchResponse, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, body := postJSON(t, http.DefaultClient, base+"/v1/search", SearchRequest{Values: q.Values, K: 2})
		if resp.StatusCode != http.StatusOK {
			t.Errorf("in-flight search: status %d (%s)", resp.StatusCode, body)
			searchDone <- SearchResponse{}
			return
		}
		var sr SearchResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Errorf("decode: %v", err)
		}
		searchDone <- sr
	}()
	waitFor(t, func() bool { return srv.waiting.Load() == 1 }, "search to queue")

	cancel() // SIGTERM

	// The drain is underway: Run must NOT return while a search is queued.
	waitFor(t, func() bool { return srv.Draining() }, "drain to start")
	select {
	case err := <-runDone:
		t.Fatalf("Run returned %v with a search still in flight", err)
	case <-time.After(200 * time.Millisecond):
	}

	// Release the slot: the queued search runs to completion and the
	// drain finishes cleanly.
	<-srv.sem
	wg.Wait()
	sr := <-searchDone
	if len(sr.Hits) != 2 {
		t.Fatalf("drained search returned %d hits, want 2", len(sr.Hits))
	}
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after the last search drained")
	}
}

// TestDrainDeadlineCancelsDP pins the hard stop: when in-flight work
// outlives the drain timeout, CancelInflight cancels it through the
// request context (the same cancellation the DP polls), the request
// answers 503, and Run reports the incomplete drain.
func TestDrainDeadlineCancelsDP(t *testing.T) {
	defer checkNoLeaks(t, runtime.NumGoroutine())

	srv, d := newTestServer(t, Config{MaxInflight: 1, MaxQueue: 2})
	q := d.Series[0]

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	runDone := make(chan error, 1)
	go func() { runDone <- srv.Run(ctx, "127.0.0.1:0", 100*time.Millisecond, ready) }()
	base := "http://" + <-ready

	srv.sem <- struct{}{} // never released: the queued search can only end by cancellation
	codes := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, http.DefaultClient, base+"/v1/search", SearchRequest{Values: q.Values, K: 1})
		codes <- resp.StatusCode
	}()
	waitFor(t, func() bool { return srv.waiting.Load() == 1 }, "search to queue")

	cancel()
	select {
	case code := <-codes:
		if code != http.StatusServiceUnavailable {
			t.Fatalf("cancelled search: status %d, want 503", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("queued search not cancelled by the drain deadline")
	}
	select {
	case err := <-runDone:
		if err == nil {
			t.Fatal("Run returned nil after an incomplete drain")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return")
	}
	<-srv.sem
}

func TestHealthzFlipsWhileDraining(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy healthz: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()

	srv.StartDrain()
	resp, err = ts.Client().Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: got %v %v, want 503", resp.StatusCode, err)
	}
	resp.Body.Close()
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// checkNoLeaks fails the test if the goroutine count does not settle
// back to its starting value — the zero-leak half of the drain
// acceptance criteria. HTTP client keep-alive goroutines wind down
// asynchronously, so it polls before judging.
func checkNoLeaks(t *testing.T, before int) {
	t.Helper()
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(10 * time.Second)
	var n int
	for {
		n = runtime.NumGoroutine()
		if n <= before {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Fatalf("goroutine leak after drain: %d -> %d\n%s", before, n, buf[:runtime.Stack(buf, true)])
}

// TestStatusFor pins the sentinel-to-HTTP mapping.
func TestStatusFor(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{sdtw.ErrUnknownID, http.StatusNotFound},
		{sdtw.ErrDuplicateID, http.StatusConflict},
		{sdtw.ErrNoID, http.StatusBadRequest},
		{sdtw.ErrEmptySeries, http.StatusBadRequest},
		{sdtw.ErrBadK, http.StatusBadRequest},
		{sdtw.ErrLengthMismatch, http.StatusBadRequest},
		{context.Canceled, http.StatusServiceUnavailable},
		{context.DeadlineExceeded, http.StatusServiceUnavailable},
		{fmt.Errorf("wrapped: %w", sdtw.ErrUnknownID), http.StatusNotFound},
		{fmt.Errorf("anything else"), http.StatusInternalServerError},
	}
	for _, tc := range cases {
		if got := statusFor(tc.err); got != tc.want {
			t.Errorf("statusFor(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}

// TestStoreEndpoints: a store-backed index reports its segment shape in
// /v1/stats, compacts over /v1/compact, and an in-RAM index answers 409
// to compaction requests.
func TestStoreEndpoints(t *testing.T) {
	d := sdtw.GunDataset(sdtw.DatasetConfig{Seed: 13, SeriesPerClass: 6})
	opts := sdtw.Options{Strategy: sdtw.FixedCoreFixedWidth, WidthFrac: 0.10}
	ram, err := sdtw.NewShardedIndex(d.Series, 3, opts)
	if err != nil {
		t.Fatalf("NewShardedIndex: %v", err)
	}
	dir := t.TempDir() + "/store"
	if err := ram.SaveStore(dir); err != nil {
		t.Fatalf("SaveStore: %v", err)
	}
	ix, err := sdtw.OpenShardedIndex(dir, opts)
	if err != nil {
		t.Fatalf("OpenShardedIndex: %v", err)
	}
	defer ix.CloseStore()

	srv := New(ix, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := ts.Client()

	// Tombstone one series so compaction has work to do.
	resp, body := postJSON(t, c, ts.URL+"/v1/remove", RemoveRequest{ID: d.Series[0].ID})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("remove: status %d: %s", resp.StatusCode, body)
	}

	resp, body = postJSON(t, c, ts.URL+"/v1/search", SearchRequest{Values: d.Series[1].Values, K: 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search: status %d: %s", resp.StatusCode, body)
	}
	var sr SearchResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("search response: %v", err)
	}
	if got := sr.Stats.PrunedSketch + sr.Stats.PrunedKim + sr.Stats.PrunedKeogh + sr.Stats.Evaluated; got != sr.Stats.Candidates {
		t.Fatalf("stats do not partition candidates: %+v", sr.Stats)
	}

	r2, err := c.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	defer r2.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(r2.Body).Decode(&st); err != nil {
		t.Fatalf("stats response: %v", err)
	}
	if !st.StoreBacked || st.Segments == 0 || st.SketchWidth == 0 {
		t.Fatalf("store shape missing from stats: %+v", st)
	}
	if st.Tombstones != 1 {
		t.Fatalf("stats report %d tombstones, want 1", st.Tombstones)
	}

	resp, body = postJSON(t, c, ts.URL+"/v1/compact", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compact: status %d: %s", resp.StatusCode, body)
	}
	var cr CompactResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatalf("compact response: %v", err)
	}
	if !cr.OK || cr.LiveRecords != len(d.Series)-1 {
		t.Fatalf("unexpected compact response: %+v", cr)
	}

	// An in-RAM index refuses compaction.
	srv2, _ := newTestServer(t, Config{})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	resp, body = postJSON(t, ts2.Client(), ts2.URL+"/v1/compact", struct{}{})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("compact on in-RAM index: status %d, want 409: %s", resp.StatusCode, body)
	}
}

// TestDegradedServing: a store with a quarantined segment serves —
// /healthz stays 200 so load balancers keep routing, but flags
// degraded, and /v1/stats pins the damage to the shard carrying it.
func TestDegradedServing(t *testing.T) {
	d := sdtw.GunDataset(sdtw.DatasetConfig{Seed: 17, SeriesPerClass: 6})
	opts := sdtw.Options{Strategy: sdtw.FixedCoreFixedWidth, WidthFrac: 0.10, StoreSegmentRecords: 2}
	ram, err := sdtw.NewShardedIndex(d.Series, 3, opts)
	if err != nil {
		t.Fatalf("NewShardedIndex: %v", err)
	}
	dir := t.TempDir() + "/store"
	if err := ram.SaveStore(dir); err != nil {
		t.Fatalf("SaveStore: %v", err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "shard-0001", "seg-*.hot"))
	if err != nil || len(matches) < 2 {
		t.Fatalf("want sealed segments in shard 1, got %v (%v)", matches, err)
	}
	raw, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-5] ^= 0xff
	if err := os.WriteFile(matches[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	ix, err := sdtw.OpenShardedIndex(dir, opts, sdtw.AllowQuarantine())
	if err != nil {
		t.Fatalf("degraded open: %v", err)
	}
	defer ix.CloseStore()

	srv := New(ix, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := ts.Client()

	r, err := c.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	defer r.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		t.Fatalf("stats response: %v", err)
	}
	if !st.Degraded || st.Health == nil || st.Health.Quarantined != 1 || st.Health.QuarantinedRecords == 0 {
		t.Fatalf("stats do not report the quarantine: %+v (health %+v)", st, st.Health)
	}
	if len(st.ShardHealth) != 3 || st.ShardHealth[1].Quarantined != 1 ||
		st.ShardHealth[0].Quarantined != 0 || st.ShardHealth[2].Quarantined != 0 {
		t.Fatalf("shard health does not pin the damage to shard 1: %+v", st.ShardHealth)
	}

	r2, err := c.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	defer r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("degraded healthz: status %d, want 200 (degraded serves)", r2.StatusCode)
	}
	var h HealthResponse
	if err := json.NewDecoder(r2.Body).Decode(&h); err != nil {
		t.Fatalf("healthz response: %v", err)
	}
	if !h.OK || !h.Degraded || h.QuarantinedSegments != 1 {
		t.Fatalf("healthz = %+v, want ok and degraded with one quarantined segment", h)
	}

	// The survivors still answer searches.
	resp, body := postJSON(t, c, ts.URL+"/v1/search", SearchRequest{Values: d.Series[1].Values, K: 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded search: status %d: %s", resp.StatusCode, body)
	}
}
