// Package sdtw computes dynamic time warping (DTW) distances using locally
// relevant constraints derived from salient feature alignments, a pure-Go
// reproduction of Candan, Rossini, Sapino and Wang, "sDTW: Computing DTW
// Distances using Locally Relevant Constraints based on Salient Feature
// Alignments", VLDB 2012.
//
// The package offers four levels of API:
//
//   - one-shot helpers (DTW, DTWPath, Distance, Subsequence) for ad-hoc
//     comparisons;
//   - Engine for repeated comparisons with feature caching and full
//     per-stage accounting;
//   - Index for retrieval and k-nearest-neighbour classification over a
//     mutable collection of series, with pluggable distance backends:
//     NewIndex serves the sDTW banded distance, NewWindowedIndex serves
//     exact (optionally Sakoe-Chiba-windowed) DTW, and both answer
//     through the same Search(ctx, query, ...SearchOption) surface;
//   - Monitor for streaming subsequence matching: NewMonitor watches an
//     unbounded stream for occurrences of a set of query patterns via
//     SPRING-style incremental subsequence DTW — O(|query|) state and
//     O(|query|) work per pushed point — answering through
//     Push(ctx, value) / PushBatch / Flush with MonitorOptions
//     mirroring the Search idiom.
//
// Index searches run a shared lower-bound cascade (Keogh's exact-indexing
// pipeline, the paper's reference [7]): candidates are ordered by the
// cheap LB_Kim bound and discarded against a shared best-so-far threshold
// — first by LB_Kim, then by LB_Keogh on envelopes precomputed at
// indexing time — before any DTW grid work, with the survivors fanned out
// across a bounded worker pool running early-abandoning DTW against the
// same threshold. The cascade is exact for the backend's distance, every
// search reports a SearchStats record (per-stage prune counts, grid cells
// filled and saved, per-stage times), and a cancelled context stops the
// search mid-band. SearchBatch and LabelsAll run whole-dataset workloads
// through the same path; Add and Remove mutate the collection in place;
// Save and LoadIndex persist the whole index including its one-time
// costs. Validation failures wrap the package's sentinel errors
// (ErrEmptySeries, ErrBadK, ...) for errors.Is.
//
// The heavy lifting lives in internal packages: dtw (the dynamic program
// and band-constrained variants), scalespace and sift (1-D scale-invariant
// salient features), match (feature pairing and inconsistency pruning),
// band (the locally relevant constraint builders), lower (the LB_Kim and
// LB_Keogh bounds) and core (the pipeline).
package sdtw

import (
	"fmt"
	"io"
	"math"

	"sdtw/internal/band"
	"sdtw/internal/core"
	"sdtw/internal/dtw"
	"sdtw/internal/match"
	"sdtw/internal/series"
	"sdtw/internal/sift"
)

// Strategy selects how the DTW search band is shaped, mirroring the
// paper's constraint taxonomy (§3.3, Fig 10).
type Strategy = band.Strategy

// Band strategies. FixedCoreFixedWidth is the classical Sakoe-Chiba band;
// the adaptive variants use salient-feature alignments.
const (
	FullGrid                     = band.FullGrid
	FixedCoreFixedWidth          = band.FixedCoreFixedWidth
	FixedCoreAdaptiveWidth       = band.FixedCoreAdaptiveWidth
	AdaptiveCoreFixedWidth       = band.AdaptiveCoreFixedWidth
	AdaptiveCoreAdaptiveWidth    = band.AdaptiveCoreAdaptiveWidth
	AdaptiveCoreAdaptiveWidthAvg = band.AdaptiveCoreAdaptiveWidthAvg
	ItakuraBand                  = band.ItakuraBand
)

// Series is a univariate time series with identity and label metadata.
type Series = series.Series

// NewSeries wraps values with an identifier and class label. Series with
// non-empty IDs participate in the engine's feature cache.
func NewSeries(id string, label int, values []float64) Series {
	return series.New(id, label, values)
}

// Feature is a salient point detected on a series: temporal position,
// scale, scope (3σ) and gradient descriptor.
type Feature = sift.Feature

// Path is a warp path over the DTW grid.
type Path = dtw.Path

// Step is one cell of a warp path.
type Step = dtw.Step

// Result carries a constrained distance and its accounting: the band used,
// grid cells filled, and per-stage timings.
type Result = core.Result

// Options configures an Engine.
type Options struct {
	// Strategy selects the band type. The zero value is FullGrid (exact
	// DTW); use DefaultOptions for the paper's (ac,aw) configuration.
	Strategy Strategy
	// WidthFrac is the band width for fixed-width strategies as a
	// fraction of the second series' length (paper values: 0.06, 0.10,
	// 0.20). Zero means 0.10.
	WidthFrac float64
	// MinWidthFrac / MaxWidthFrac bound adaptive widths (§3.3.1 notes
	// adaptive widths combine naturally with domain bounds). Zero
	// MinWidthFrac means 0.20 for FixedCoreAdaptiveWidth (as in §4.3)
	// and no bound otherwise.
	MinWidthFrac, MaxWidthFrac float64
	// NeighborRadius is r for the ac2 width averaging. Zero means 1.
	NeighborRadius int
	// Slope is the Itakura slope bound. Values <= 1 (including zero)
	// mean 2.
	Slope float64
	// Symmetric unions the X-driven and Y-driven bands so the distance is
	// symmetric (§3.3.3).
	Symmetric bool
	// DescriptorBins is the salient descriptor length (even, the paper
	// sweeps 4–128). Zero means 64.
	DescriptorBins int
	// Epsilon is the relaxed-extremum slack ε (§3.1.2). Zero means
	// 0.0096, the paper's setting.
	Epsilon float64
	// Octaves / Levels control the scale space; zero means the paper's
	// o = ⌊log2 N⌋ − 6 and s = 2.
	Octaves, Levels int
	// MaxAmplitudeDiff (τa), MaxScaleRatio (τs) and DominanceRatio (τd)
	// control feature matching; zeros select defaults (0.5, 2.5, 1.25).
	MaxAmplitudeDiff, MaxScaleRatio, DominanceRatio float64
	// PointDistance is the element cost; nil means squared difference.
	PointDistance func(a, b float64) float64
	// ComputePath makes Distance recover the warp path.
	ComputePath bool
	// KeepBand copies the constraint band into Result.Band (off by
	// default to avoid a per-comparison allocation).
	KeepBand bool
	// DisableCache turns off per-series feature caching.
	DisableCache bool
	// DisableAbandon turns off threshold-based early abandonment inside
	// Index queries. Abandonment never changes results — a candidate is
	// abandoned only once its partial cost, itself a lower bound on its
	// distance, exceeds the k-th best distance — it only skips grid work;
	// the switch exists for A/B verification and measurement.
	DisableAbandon bool
	// Workers bounds the worker pool Index queries fan candidates out
	// across. Zero means GOMAXPROCS; 1 forces sequential queries. It does
	// not affect Engine, whose calls are parallelised by the caller.
	Workers int
	// SketchWidth is the coefficient count of the stage-0 LB_PAA sketch
	// filter Index queries run before LB_Kim (per envelope side). Zero
	// means DefaultSketchWidth; negative disables stage 0. The width
	// never changes search results — LB_PAA is admissible at every width
	// — so it is deliberately excluded from the configuration
	// fingerprint: snapshots and stores load under any width.
	SketchWidth int
	// StoreSegmentRecords caps how many records each segment of a store
	// written by SaveStore holds before it is sealed. Zero means the
	// store's default. Like SketchWidth it never changes search results
	// and is excluded from the configuration fingerprint — it only
	// shapes the on-disk segment layout.
	StoreSegmentRecords int
}

// DefaultSketchWidth is the stage-0 sketch width used when
// Options.SketchWidth is zero: 16 coefficients per envelope side keeps
// the sketch pass under 1/8th of a full LB_Keogh scan for the UCR-scale
// lengths the paper evaluates while still pruning most far candidates.
const DefaultSketchWidth = 16

// resolveSketchWidth lowers Options.SketchWidth onto the internal
// convention (0 disables).
func resolveSketchWidth(w int) int {
	if w < 0 {
		return 0
	}
	if w == 0 {
		return DefaultSketchWidth
	}
	return w
}

// DefaultOptions returns the paper's headline configuration: adaptive
// core & adaptive width with 64-bin descriptors.
func DefaultOptions() Options {
	return Options{Strategy: AdaptiveCoreAdaptiveWidth}
}

// toCore lowers the public options onto the internal pipeline options.
func (o Options) toCore() core.Options {
	feat := sift.DefaultConfig()
	if o.DescriptorBins != 0 {
		feat.DescriptorBins = o.DescriptorBins
	}
	if o.Epsilon != 0 {
		feat.Epsilon = o.Epsilon
	}
	feat.ScaleSpace.Octaves = o.Octaves
	feat.ScaleSpace.Levels = o.Levels

	matcher := match.DefaultConfig()
	if o.MaxAmplitudeDiff != 0 {
		matcher.MaxAmplitudeDiff = o.MaxAmplitudeDiff
	}
	if o.MaxScaleRatio != 0 {
		matcher.MaxScaleRatio = o.MaxScaleRatio
	}
	if o.DominanceRatio != 0 {
		matcher.DominanceRatio = o.DominanceRatio
	}

	return core.Options{
		Band: band.Config{
			Strategy:       o.Strategy,
			WidthFrac:      o.WidthFrac,
			MinWidthFrac:   o.MinWidthFrac,
			MaxWidthFrac:   o.MaxWidthFrac,
			NeighborRadius: o.NeighborRadius,
			Slope:          o.Slope,
			Symmetric:      o.Symmetric,
		},
		Features:      feat,
		Matcher:       matcher,
		PointDistance: o.PointDistance,
		ComputePath:   o.ComputePath,
		KeepBand:      o.KeepBand,
		CacheFeatures: !o.DisableCache,
	}
}

// Engine computes sDTW distances with feature caching. It is safe for
// concurrent use.
type Engine struct {
	inner *core.Engine
}

// NewEngine builds an engine from the given options.
func NewEngine(opts Options) *Engine {
	return &Engine{inner: core.NewEngine(opts.toCore())}
}

// Distance computes the constrained DTW distance between two raw series.
// Unkeyed inputs bypass the feature cache; use DistanceSeries with
// ID-carrying Series for cached, repeated comparisons.
func (e *Engine) Distance(x, y []float64) (Result, error) {
	return e.inner.Distance(Series{Values: x}, Series{Values: y})
}

// DistanceSeries computes the constrained DTW distance between two Series,
// caching salient features under their IDs.
func (e *Engine) DistanceSeries(x, y Series) (Result, error) {
	return e.inner.Distance(x, y)
}

// DistanceUnder computes the constrained distance with threshold-aware
// early abandonment: once every continuation of the dynamic program
// already exceeds budget, the computation stops with Result.Abandoned set
// and a partial Distance that is a valid lower bound on the true banded
// distance. Retrieval loops pass their best-so-far k-th distance so
// hopeless candidates stop after a few rows. budget = +Inf behaves
// exactly like Distance. Abandonment assumes a non-negative point cost
// (the default squared cost qualifies).
func (e *Engine) DistanceUnder(x, y []float64, budget float64) (Result, error) {
	return e.inner.DistanceUnder(Series{Values: x}, Series{Values: y}, budget)
}

// DistanceUnderSeries is DistanceUnder for ID-carrying Series, caching
// salient features under their IDs.
func (e *Engine) DistanceUnderSeries(x, y Series, budget float64) (Result, error) {
	return e.inner.DistanceUnder(x, y, budget)
}

// Features extracts (or recalls from cache) the salient features of s.
func (e *Engine) Features(s Series) ([]Feature, error) {
	return e.inner.Features(s)
}

// Subsequence finds the contiguous region of stream whose DTW distance to
// query is minimal (open-begin, open-end alignment) under the engine's
// point distance, reusing the engine's pooled DP workspaces so repeated
// calls allocate nothing in steady state. For push-based matching over an
// unbounded stream use a Monitor instead.
func (e *Engine) Subsequence(query, stream []float64) (SubsequenceMatch, error) {
	return e.inner.Subsequence(query, stream)
}

// Alignment reports the matched salient feature pairs and the
// corresponding scope boundaries between x and y.
type Alignment struct {
	// Pairs is the number of consistent matched pairs.
	Pairs int
	// BoundsX, BoundsY are the corresponding committed scope boundary
	// positions on the two series.
	BoundsX, BoundsY []int
}

// Align computes the consistent salient-feature alignment between two
// series without running the dynamic program.
func (e *Engine) Align(x, y Series) (Alignment, error) {
	al, err := e.inner.Align(x, y)
	if err != nil {
		return Alignment{}, err
	}
	return Alignment{Pairs: len(al.Pairs), BoundsX: al.BoundsX, BoundsY: al.BoundsY}, nil
}

// Warm pre-extracts and caches the features of every series (the paper's
// one-time indexing cost, §3.4).
func (e *Engine) Warm(data []Series) error {
	_, err := e.inner.Warm(data)
	return err
}

// DTW computes the exact (unconstrained) DTW distance with squared point
// costs, the reference the paper's error measures compare against.
func DTW(x, y []float64) (float64, error) {
	return dtw.Distance(x, y, nil)
}

// DTWPath computes the exact DTW distance and the optimal warp path.
func DTWPath(x, y []float64) (float64, Path, error) {
	pr, err := dtw.DistanceWithPath(x, y, nil)
	if err != nil {
		return 0, nil, err
	}
	return pr.Distance, pr.Path, nil
}

// Distance is a one-shot sDTW computation with the given options. For
// repeated comparisons build an Engine so salient features are reused.
func Distance(x, y []float64, opts Options) (Result, error) {
	return NewEngine(opts).Distance(x, y)
}

// SakoeChibaDTW computes the classical fixed-band DTW distance: each point
// of x is compared against widthFrac of y's points around the diagonal.
func SakoeChibaDTW(x, y []float64, widthFrac float64) (float64, error) {
	if len(x) == 0 || len(y) == 0 {
		return 0, fmt.Errorf("sdtw: empty input (len(x)=%d len(y)=%d): %w", len(x), len(y), ErrEmptySeries)
	}
	b := dtw.SakoeChiba(len(x), len(y), widthFrac)
	d, _, err := dtw.Banded(x, y, b, nil)
	return d, err
}

// ExtractFeatures detects salient features on v with the paper's default
// extraction settings, overridden by the relevant fields of opts.
func ExtractFeatures(v []float64, opts Options) ([]Feature, error) {
	cfg := opts.toCore().Features
	return sift.Extract(v, cfg)
}

// SubsequenceMatch locates the best-matching region of a long series.
type SubsequenceMatch = dtw.SubsequenceMatch

// Subsequence finds the contiguous region of stream whose DTW distance to
// query is minimal (open-begin, open-end alignment): the query must be
// fully consumed, the stream may be entered and left anywhere. It is a
// thin wrapper over the streaming Monitor — the whole stream is pushed in
// one batch and the monitor's best-only Flush is the answer, bit-identical
// to the classical offline O(|query|·|stream|) dynamic program.
//
// Deprecated: use Monitor, which serves the same one-shot result through
// Flush and additionally handles unbounded streams, multiple queries,
// thresholded non-overlapping match emission, and cancellation.
func Subsequence(query, stream []float64) (SubsequenceMatch, error) {
	if len(stream) == 0 {
		return SubsequenceMatch{}, fmt.Errorf("sdtw: Subsequence: empty stream: %w", ErrEmptySeries)
	}
	m, err := NewMonitor([]Series{{Values: query}}, Options{})
	if err != nil {
		return SubsequenceMatch{}, fmt.Errorf("sdtw: Subsequence: %w", err)
	}
	if _, err := m.PushBatch(nil, stream); err != nil {
		return SubsequenceMatch{}, fmt.Errorf("sdtw: Subsequence: %w", err)
	}
	matches, err := m.Flush()
	if err != nil {
		return SubsequenceMatch{}, fmt.Errorf("sdtw: Subsequence: %w", err)
	}
	if len(matches) == 0 {
		// Only reachable when every column's distance is NaN (a NaN query
		// or stream): no region ever compares below +Inf. The historical
		// DP returned position 0 with the NaN cost; keep that shape.
		return SubsequenceMatch{Distance: math.NaN()}, nil
	}
	best := matches[0]
	return SubsequenceMatch{Start: best.Start, End: best.End, Distance: best.Distance}, nil
}

// SaveFeatures serialises the engine's salient-feature cache (gob
// encoded) so the one-time extraction cost (§3.4) can be paid offline and
// shipped alongside the data. Snapshots are only meaningful for engines
// configured with the same feature options.
func (e *Engine) SaveFeatures(w io.Writer) error { return e.inner.SaveFeatures(w) }

// LoadFeatures merges a cache snapshot written by SaveFeatures into the
// engine.
func (e *Engine) LoadFeatures(r io.Reader) error { return e.inner.LoadFeatures(r) }
