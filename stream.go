package sdtw

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sdtw/internal/dtw"
)

// Match is one subsequence occurrence reported by a Monitor: the region
// [Start, End] (inclusive stream positions, counted from the first point
// ever pushed) whose subsequence DTW distance to the query is Distance.
type Match struct {
	// Query is the index of the matched query in the monitor's query list.
	Query int
	// QueryID is that query's Series.ID ("" if the series is unkeyed).
	QueryID string
	// Start and End delimit the matched stream region, inclusive.
	Start, End int
	// Distance is the subsequence DTW distance between query and region.
	Distance float64
}

// QueryMonitorStats is the per-query slice of MonitorStats.
type QueryMonitorStats struct {
	// QueryID is the query's Series.ID ("" if unkeyed).
	QueryID string
	// Matches is the number of matches emitted for this query.
	Matches int64
	// Cells is the number of DP cells this query's recurrence filled
	// (|query| per stream point).
	Cells int64
	// Time is the wall time spent advancing this query's recurrence.
	Time time.Duration
}

// MonitorStats accounts for a monitor's work: stream points consumed,
// matches emitted, DP cells filled, and where the time went per query.
type MonitorStats struct {
	// Points is the number of stream points consumed so far.
	Points int64
	// Matches is the number of matches emitted so far (Push and Flush).
	Matches int64
	// Cells is the total DP cells filled across all queries.
	Cells int64
	// PushTime is the total wall time spent inside Push and PushBatch.
	PushTime time.Duration
	// PerQuery breaks matches, cells and time down by query.
	PerQuery []QueryMonitorStats
}

// monitorConfig is the resolved form of a MonitorOption list.
type monitorConfig struct {
	threshold    float64
	thresholdSet bool
	minGap       int
	bestOnly     bool
	workers      int
}

// MonitorOption configures a NewMonitor call, mirroring the SearchOption
// idiom of the retrieval surface.
type MonitorOption func(*monitorConfig)

// WithMatchThreshold enables streaming match emission: every stream
// region whose subsequence DTW distance to a query drops to d or below is
// reported by Push as soon as it is confirmed — i.e. once no still-open
// warp path could improve or overlap it (the SPRING report condition).
// Reported matches for one query never overlap. Without it (or with
// WithBestOnly) the monitor only tracks each query's single best match,
// reported by Flush.
func WithMatchThreshold(d float64) MonitorOption {
	return func(c *monitorConfig) { c.threshold, c.thresholdSet = d, true }
}

// WithMinGap requires at least g stream points between an emitted match's
// end and the next match's start for the same query. Zero (the default)
// only enforces non-overlap.
func WithMinGap(g int) MonitorOption {
	return func(c *monitorConfig) { c.minGap = g }
}

// WithBestOnly makes Flush report each query's single global best match
// over the whole stream — the offline Subsequence answer — instead of
// streaming thresholded emission. Combined with WithMatchThreshold the
// threshold becomes a filter: Flush reports the best match only if its
// distance is within the threshold. This is the default when no
// threshold is given.
func WithBestOnly() MonitorOption {
	return func(c *monitorConfig) { c.bestOnly = true }
}

// WithMonitorWorkers bounds the worker pool Push and PushBatch fan
// queries out across, overriding Options.Workers for this monitor.
// n <= 0 means GOMAXPROCS; 1 forces sequential processing. Fan-out only
// engages for multi-query monitors; results are independent of the
// worker count.
func WithMonitorWorkers(n int) MonitorOption {
	return func(c *monitorConfig) { c.workers = n }
}

// monitorQuery is the per-query streaming state.
type monitorQuery struct {
	id      string
	sp      *dtw.Spring
	matches int64
	time    time.Duration
	out     []Match // per-call emission buffer, reused across pushes
}

// Monitor is the streaming subsequence surface: it watches one unbounded
// stream for occurrences of a set of query patterns using SPRING-style
// incremental subsequence DTW. State is O(|query|) per query and each
// pushed point costs O(Σ|query|) — past stream values are never revisited,
// so the stream may be unbounded.
//
// Push and PushBatch consume stream points and return the matches they
// confirmed; Flush ends the stream, reporting each query's pending (or,
// in best-only mode, global best) match and closing the monitor. With
// the default point distance the per-point recurrence runs the
// monomorphized squared-cost kernel (see the README's Performance
// section); a custom Options.PointDistance selects the generic path. A
// Monitor is safe for concurrent use in the sense that Stats may be read
// while another goroutine pushes; pushing itself must come from one
// goroutine at a time (calls are serialised by an internal lock, but the
// stream order would otherwise be unspecified).
//
// Cancellation: a context cancelled before any point of the call is
// consumed leaves the monitor untouched; one cancelled mid-batch stops
// the work promptly with ctx.Err() and closes the monitor, because its
// queries may no longer agree on the stream position. Every call on a
// closed monitor reports ErrMonitorClosed — Flush is terminal, exactly
// once, by every path into the closed state (the contract the fleet Hub
// relies on when recycling stream state; see Hub for monitoring many
// streams against shared standing queries in one process).
type Monitor struct {
	mu       sync.Mutex
	queries  []monitorQuery
	workers  int
	bestOnly bool
	// threshold in best-only mode filters the final best match; in
	// emission mode it lives inside each Spring.
	threshold float64
	closed    bool
	points    int64
	matches   int64
	pushTime  time.Duration
	one       [1]float64 // Push's allocation-free single-point batch
}

// NewMonitor builds a streaming monitor over the given query patterns.
// Every query must be non-empty and non-empty query IDs must be unique
// (they label emitted matches). Of opts, the monitor uses PointDistance
// and Workers; band options do not apply — open-begin subsequence
// alignment runs the full per-point recurrence.
func NewMonitor(queries []Series, opts Options, mopts ...MonitorOption) (*Monitor, error) {
	cfg := monitorConfig{threshold: math.Inf(1), workers: opts.Workers}
	for _, o := range mopts {
		o(&cfg)
	}
	if len(queries) == 0 {
		return nil, fmt.Errorf("sdtw: NewMonitor: no queries: %w", ErrEmptyCollection)
	}
	if cfg.thresholdSet && (math.IsNaN(cfg.threshold) || cfg.threshold < 0) {
		return nil, fmt.Errorf("sdtw: NewMonitor: WithMatchThreshold needs a non-negative number, got %v", cfg.threshold)
	}
	if cfg.minGap < 0 {
		return nil, fmt.Errorf("sdtw: NewMonitor: negative WithMinGap %d", cfg.minGap)
	}
	bestOnly := cfg.bestOnly || !cfg.thresholdSet
	springThreshold := math.Inf(1)
	if !bestOnly {
		springThreshold = cfg.threshold
	}
	m := &Monitor{
		queries:   make([]monitorQuery, len(queries)),
		workers:   monitorWorkers(cfg.workers),
		bestOnly:  bestOnly,
		threshold: cfg.threshold,
	}
	seen := make(map[string]int, len(queries))
	for i, q := range queries {
		if q.Len() == 0 {
			return nil, fmt.Errorf("sdtw: NewMonitor: query %d: %w", i, ErrEmptySeries)
		}
		if q.ID != "" {
			if prev, dup := seen[q.ID]; dup {
				return nil, fmt.Errorf("sdtw: NewMonitor: queries %d and %d share ID %q: %w", prev, i, q.ID, ErrDuplicateID)
			}
			seen[q.ID] = i
		}
		sp, err := dtw.NewSpring(q.Values, dtw.SpringConfig{
			Dist:      opts.PointDistance,
			Threshold: springThreshold,
			MinGap:    cfg.minGap,
		})
		if err != nil {
			return nil, fmt.Errorf("sdtw: NewMonitor: query %d: %w", i, err)
		}
		m.queries[i] = monitorQuery{id: q.ID, sp: sp}
	}
	return m, nil
}

// monitorWorkers resolves a worker-pool width: <= 0 means GOMAXPROCS.
func monitorWorkers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// Push consumes one stream point and returns the matches it confirmed
// (nil on quiet points — the steady-state path allocates nothing).
//
//sdtw:hotpath
func (m *Monitor) Push(ctx context.Context, v float64) ([]Match, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.one[0] = v
	return m.push(ctx, m.one[:])
}

// PushBatch consumes a batch of stream points — equivalent to pushing
// them one by one, but amortising the per-call overhead and fanning
// multi-query work out across the worker pool once per batch.
//
//sdtw:hotpath
func (m *Monitor) PushBatch(ctx context.Context, values []float64) ([]Match, error) {
	if len(values) == 0 {
		return nil, nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.push(ctx, values)
}

// cancelCheckPoints is how often (in stream points) a push polls its
// context; a point is O(|query|) work, so the poll stays off the hot
// path while bounding cancellation latency.
const cancelCheckPoints = 64

// streamCtxErr is ctx.Err() tolerating a nil context, mirroring the
// retrieval surface: Index.Search accepts a nil context and so do Push,
// PushBatch and Flush — a nil context simply never cancels.
func streamCtxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// push advances every query over values. Caller holds m.mu.
//
//sdtw:hotpath
func (m *Monitor) push(ctx context.Context, values []float64) ([]Match, error) {
	if m.closed {
		return nil, fmt.Errorf("sdtw: Push: %w", ErrMonitorClosed)
	}
	// A context cancelled before any work leaves the monitor untouched
	// and reusable.
	if err := streamCtxErr(ctx); err != nil {
		return nil, err
	}
	start := time.Now()
	var err error
	if m.workers > 1 && len(m.queries) > 1 {
		err = m.pushParallel(ctx, values)
	} else {
		for qi := range m.queries {
			if err = m.process(ctx, qi, values); err != nil {
				break
			}
		}
	}
	m.pushTime += time.Since(start)
	if err != nil {
		// Mid-batch cancellation: the queries may disagree on the stream
		// position, so the monitor cannot keep going.
		m.closed = true
		return nil, err
	}
	m.points += int64(len(values))
	return m.collect(), nil
}

// process advances one query over values, buffering emitted matches.
// Per-query timing is only split out for multi-query monitors: a
// single-query monitor's time is its push time (Stats mirrors it), and
// skipping the extra clock reads keeps the per-point hot path lean.
//
//sdtw:hotpath
func (m *Monitor) process(ctx context.Context, qi int, values []float64) error {
	q := &m.queries[qi]
	q.out = q.out[:0]
	var start time.Time
	timed := len(m.queries) > 1
	if timed {
		start = time.Now()
	}
	for k, v := range values {
		if k%cancelCheckPoints == 0 && k > 0 {
			if err := streamCtxErr(ctx); err != nil {
				if timed {
					q.time += time.Since(start)
				}
				return err
			}
		}
		if match, ok := q.sp.Append(v); ok {
			q.matches++
			q.out = append(q.out, Match{
				Query: qi, QueryID: q.id,
				Start: match.Start, End: match.End, Distance: match.Distance,
			})
		}
	}
	if timed {
		q.time += time.Since(start)
	}
	return nil
}

// pushParallel fans the queries out across the bounded worker pool; each
// worker runs whole queries over the whole batch, so queries never share
// mutable state and the fan-out is free of per-point synchronisation.
func (m *Monitor) pushParallel(ctx context.Context, values []float64) error {
	w := m.workers
	if w > len(m.queries) {
		w = len(m.queries)
	}
	var next atomic.Int64
	errs := make([]error, w)
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				qi := int(next.Add(1)) - 1
				if qi >= len(m.queries) {
					return
				}
				if err := m.process(ctx, qi, values); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// collect gathers the per-query emission buffers into one stream-ordered
// slice (nil when nothing was emitted, keeping quiet pushes allocation-
// free).
func (m *Monitor) collect() []Match {
	total := 0
	for qi := range m.queries {
		total += len(m.queries[qi].out)
	}
	if total == 0 {
		return nil
	}
	out := make([]Match, 0, total)
	for qi := range m.queries {
		out = append(out, m.queries[qi].out...)
	}
	m.matches += int64(total)
	sortMatches(out)
	return out
}

// sortMatches orders emitted matches by stream position, then query.
func sortMatches(out []Match) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].End != out[j].End {
			return out[i].End < out[j].End
		}
		if out[i].Query != out[j].Query {
			return out[i].Query < out[j].Query
		}
		return out[i].Start < out[j].Start
	})
}

// Flush ends the stream and closes the monitor. In thresholded mode it
// confirms each query's pending match (nothing after end-of-stream can
// improve or extend it); in best-only mode it reports each query's
// single global best match — for a monitor built with default options
// this is exactly the offline Subsequence answer. Calls after Flush
// report ErrMonitorClosed.
func (m *Monitor) Flush() ([]Match, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, fmt.Errorf("sdtw: Flush: %w", ErrMonitorClosed)
	}
	m.closed = true
	var out []Match
	for qi := range m.queries {
		q := &m.queries[qi]
		var match dtw.SubsequenceMatch
		var ok bool
		if m.bestOnly {
			match, ok = q.sp.Best()
			ok = ok && match.Distance <= m.threshold
		} else {
			match, ok = q.sp.Flush()
		}
		if ok {
			q.matches++
			out = append(out, Match{
				Query: qi, QueryID: q.id,
				Start: match.Start, End: match.End, Distance: match.Distance,
			})
		}
	}
	m.matches += int64(len(out))
	sortMatches(out)
	return out, nil
}

// Stats returns a snapshot of the monitor's accounting. It is safe to
// call concurrently with pushes (it serialises against them) and keeps
// working after Flush.
func (m *Monitor) Stats() MonitorStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := MonitorStats{
		Points:   m.points,
		Matches:  m.matches,
		PushTime: m.pushTime,
		PerQuery: make([]QueryMonitorStats, len(m.queries)),
	}
	for qi := range m.queries {
		q := &m.queries[qi]
		cells := q.sp.Cells()
		st.Cells += cells
		qTime := q.time
		if len(m.queries) == 1 {
			// A single query accounts for the whole push time; process
			// skips the redundant per-query clock reads on that path.
			qTime = m.pushTime
		}
		st.PerQuery[qi] = QueryMonitorStats{
			QueryID: q.id,
			Matches: q.matches,
			Cells:   cells,
			Time:    qTime,
		}
	}
	return st
}
