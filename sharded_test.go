package sdtw

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"testing"
)

// shardedAndFlat builds, over the same collection, one ShardedIndex per
// shard count in ns and the single-process Index the exactness property
// compares against, for the named backend.
func shardedAndFlat(t *testing.T, backend string, data []Series, ns []int) (map[int]*ShardedIndex, *Index) {
	t.Helper()
	sharded := make(map[int]*ShardedIndex, len(ns))
	var flat *Index
	var err error
	switch backend {
	case "engine":
		opts := Options{Strategy: FixedCoreFixedWidth, WidthFrac: 0.10}
		flat, err = NewIndex(data, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range ns {
			sharded[n], err = NewShardedIndex(data, n, opts)
			if err != nil {
				t.Fatalf("%d shards: %v", n, err)
			}
		}
	case "windowed":
		flat, err = NewWindowedIndex(data, 12)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range ns {
			sharded[n], err = NewShardedWindowedIndex(data, n, 12)
			if err != nil {
				t.Fatalf("%d shards: %v", n, err)
			}
		}
	default:
		t.Fatalf("unknown backend %q", backend)
	}
	return sharded, flat
}

// flatHits maps a single-process neighbour list to (ID, Label, Distance)
// hits so it compares field-for-field with the sharded result.
func flatHits(ix *Index, nbrs []Neighbor) []Hit {
	hits := make([]Hit, len(nbrs))
	for i, nb := range nbrs {
		s := ix.Series(nb.Pos)
		hits[i] = Hit{ID: s.ID, Label: s.Label, Distance: nb.Distance}
	}
	return hits
}

// requireSameHits asserts bit-identity: same IDs in the same order and
// distances equal down to the last bit (math.Float64bits).
func requireSameHits(t *testing.T, label string, want, got []Hit) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d hits, want %d\n got: %v\nwant: %v", label, len(got), len(want), got, want)
	}
	for i := range want {
		if want[i].ID != got[i].ID {
			t.Fatalf("%s: hit %d is %q, want %q\n got: %v\nwant: %v", label, i, got[i].ID, want[i].ID, got, want)
		}
		if math.Float64bits(want[i].Distance) != math.Float64bits(got[i].Distance) {
			t.Fatalf("%s: hit %d (%q) distance %v (bits %x), want %v (bits %x)",
				label, i, got[i].ID, got[i].Distance, math.Float64bits(got[i].Distance),
				want[i].Distance, math.Float64bits(want[i].Distance))
		}
		if want[i].Label != got[i].Label {
			t.Fatalf("%s: hit %d (%q) label %d, want %d", label, i, got[i].ID, got[i].Label, want[i].Label)
		}
	}
}

// TestShardedSearchExactness is the serving layer's headline property:
// for any shard count, the merged sharded top-k is bit-identical (IDs
// and Float64bits distances) to a single-process Index.Search over the
// same collection — on both backends, across ks, and for thresholded
// range searches.
func TestShardedSearchExactness(t *testing.T) {
	d := TraceDataset(DatasetConfig{Seed: 7, SeriesPerClass: 6})
	ctx := context.Background()
	shardCounts := []int{1, 2, 4, 7}
	for _, backend := range []string{"engine", "windowed"} {
		sharded, flat := shardedAndFlat(t, backend, d.Series, shardCounts)
		for qi := 0; qi < d.Len(); qi += 3 {
			query := d.Series[qi]
			for _, k := range []int{1, 3, 10} {
				nbrs, _, err := flat.Search(ctx, query, WithK(k))
				if err != nil {
					t.Fatal(err)
				}
				want := flatHits(flat, nbrs)
				for _, n := range shardCounts {
					got, _, err := sharded[n].Search(ctx, query, WithK(k))
					if err != nil {
						t.Fatalf("%s/%d shards: %v", backend, n, err)
					}
					requireSameHits(t, fmt.Sprintf("%s/query %d/k=%d/%d shards", backend, qi, k, n), want, got)
				}
			}
			// Thresholded range search: pick a cutoff that keeps a few.
			nbrs, _, err := flat.Search(ctx, query, WithK(5))
			if err != nil {
				t.Fatal(err)
			}
			cut := nbrs[len(nbrs)-1].Distance
			wantN, _, err := flat.Search(ctx, query, WithThreshold(cut))
			if err != nil {
				t.Fatal(err)
			}
			want := flatHits(flat, wantN)
			for _, n := range shardCounts {
				got, _, err := sharded[n].Search(ctx, query, WithThreshold(cut))
				if err != nil {
					t.Fatalf("%s/%d shards: %v", backend, n, err)
				}
				requireSameHits(t, fmt.Sprintf("%s/query %d/threshold/%d shards", backend, qi, n), want, got)
			}
		}
	}
}

// TestShardedSearchExactnessAfterMutation re-checks the property after a
// mix of Adds and Removes: the sharded index must keep answering exactly
// like a flat index over the same post-mutation collection, including
// the insertion-order tie-breaks Remove renumbering shifts around.
func TestShardedSearchExactnessAfterMutation(t *testing.T) {
	d := TraceDataset(DatasetConfig{Seed: 11, SeriesPerClass: 5})
	extra := TraceDataset(DatasetConfig{Seed: 23, SeriesPerClass: 2})
	ctx := context.Background()
	opts := Options{Strategy: FixedCoreFixedWidth, WidthFrac: 0.10}

	si, err := NewShardedIndex(d.Series, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Mutate: drop every 4th series, then add the extra ones under fresh IDs.
	current := append([]Series(nil), d.Series...)
	for i := d.Len() - 4; i >= 0; i -= 4 {
		if err := si.Remove(current[i].ID); err != nil {
			t.Fatal(err)
		}
		current = append(current[:i], current[i+1:]...)
	}
	for i, s := range extra.Series {
		s.ID = fmt.Sprintf("extra-%d", i)
		if err := si.Add(s); err != nil {
			t.Fatal(err)
		}
		current = append(current, s)
	}
	flat, err := NewIndex(current, opts)
	if err != nil {
		t.Fatal(err)
	}
	if si.Len() != flat.Len() {
		t.Fatalf("sharded holds %d series, flat %d", si.Len(), flat.Len())
	}
	for qi := 0; qi < len(current); qi += 5 {
		query := current[qi]
		nbrs, _, err := flat.Search(ctx, query, WithK(4))
		if err != nil {
			t.Fatal(err)
		}
		want := flatHits(flat, nbrs)
		got, _, err := si.Search(ctx, query, WithK(4))
		if err != nil {
			t.Fatal(err)
		}
		requireSameHits(t, fmt.Sprintf("post-mutation query %d", qi), want, got)
	}
}

// TestShardedEmptyAndGrow pins the serving lifecycle a single Index
// forbids: start empty, answer searches with no hits, grow by Add,
// shrink back to empty by Remove.
func TestShardedEmptyAndGrow(t *testing.T) {
	d := TraceDataset(DatasetConfig{Seed: 3, SeriesPerClass: 2})
	ctx := context.Background()
	si, err := NewShardedIndex(nil, 3, Options{Strategy: FixedCoreFixedWidth, WidthFrac: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	hits, _, err := si.Search(ctx, d.Series[0], WithK(3))
	if err != nil {
		t.Fatalf("search on empty sharded index: %v", err)
	}
	if len(hits) != 0 {
		t.Fatalf("empty index returned %d hits", len(hits))
	}
	for _, s := range d.Series {
		if err := si.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	if si.Len() != d.Len() {
		t.Fatalf("Len = %d after %d Adds", si.Len(), d.Len())
	}
	hits, _, err = si.Search(ctx, d.Series[0], WithK(2))
	if err != nil {
		t.Fatal(err)
	}
	// d.Series[0] is indexed under its own ID, so it is self-excluded.
	if len(hits) != 2 || hits[0].ID == d.Series[0].ID {
		t.Fatalf("unexpected hits %v", hits)
	}
	for _, s := range d.Series {
		if err := si.Remove(s.ID); err != nil {
			t.Fatal(err)
		}
	}
	if si.Len() != 0 {
		t.Fatalf("Len = %d after removing everything", si.Len())
	}
	if err := si.Remove(d.Series[0].ID); !IsErr(err, ErrUnknownID) {
		t.Fatalf("Remove on empty index: %v, want ErrUnknownID", err)
	}
}

// TestShardedValidation pins the sharded surface's own validation:
// IDs are mandatory, duplicates refused, WithExclude rejected.
func TestShardedValidation(t *testing.T) {
	d := TraceDataset(DatasetConfig{Seed: 5, SeriesPerClass: 2})
	ctx := context.Background()
	if _, err := NewShardedIndex([]Series{{Values: []float64{1, 2, 3}}}, 2, DefaultOptions()); !IsErr(err, ErrNoID) {
		t.Fatalf("unkeyed series: %v, want ErrNoID", err)
	}
	dup := []Series{NewSeries("a", 0, []float64{1, 2}), NewSeries("a", 0, []float64{3, 4})}
	if _, err := NewShardedIndex(dup, 2, DefaultOptions()); !IsErr(err, ErrDuplicateID) {
		t.Fatalf("duplicate IDs: %v, want ErrDuplicateID", err)
	}
	si, err := NewShardedIndex(d.Series, 2, Options{Strategy: FixedCoreFixedWidth, WidthFrac: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	if err := si.Add(Series{Values: []float64{1, 2, 3}}); !IsErr(err, ErrNoID) {
		t.Fatalf("Add unkeyed: %v, want ErrNoID", err)
	}
	if err := si.Add(d.Series[0]); !IsErr(err, ErrDuplicateID) {
		t.Fatalf("Add duplicate: %v, want ErrDuplicateID", err)
	}
	if _, _, err := si.Search(ctx, d.Series[0], WithExclude(0)); err == nil {
		t.Fatal("WithExclude on sharded search should be rejected")
	}
	if _, _, err := si.Search(ctx, Series{ID: "q"}, WithK(1)); !IsErr(err, ErrEmptySeries) {
		t.Fatalf("empty query: %v, want ErrEmptySeries", err)
	}
}

// TestShardedPersistRoundTrip saves and reloads a sharded index on both
// backends and requires bit-identical search answers afterwards —
// including the insertion sequences that order distance ties.
func TestShardedPersistRoundTrip(t *testing.T) {
	d := TraceDataset(DatasetConfig{Seed: 19, SeriesPerClass: 4})
	ctx := context.Background()
	opts := Options{Strategy: FixedCoreFixedWidth, WidthFrac: 0.10}

	engine, err := NewShardedIndex(d.Series, 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := engine.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadShardedIndex(&buf, opts)
	if err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < d.Len(); qi += 4 {
		want, _, err := engine.Search(ctx, d.Series[qi], WithK(3))
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := restored.Search(ctx, d.Series[qi], WithK(3))
		if err != nil {
			t.Fatal(err)
		}
		requireSameHits(t, fmt.Sprintf("engine reload query %d", qi), want, got)
	}
	// Mutations keep working on the restored cluster (sequences resume).
	if err := restored.Remove(d.Series[0].ID); err != nil {
		t.Fatal(err)
	}
	if err := restored.Add(d.Series[0]); err != nil {
		t.Fatal(err)
	}

	windowed, err := NewShardedWindowedIndex(d.Series, 3, 12)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := windowed.Save(&buf); err != nil {
		t.Fatal(err)
	}
	wRestored, err := LoadShardedWindowedIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := windowed.Search(ctx, d.Series[1], WithK(5))
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := wRestored.Search(ctx, d.Series[1], WithK(5))
	if err != nil {
		t.Fatal(err)
	}
	requireSameHits(t, "windowed reload", want, got)

	// Cross-kind loads refuse cleanly.
	buf.Reset()
	if err := engine.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadShardedWindowedIndex(&buf); !IsErr(err, ErrConfigMismatch) {
		t.Fatalf("windowed load of engine snapshot: %v, want ErrConfigMismatch", err)
	}
}

// TestShardedSearchConcurrentMutation hammers Search against Add/Remove
// (run with -race): searches must never block behind mutations or see a
// half-published shard.
func TestShardedSearchConcurrentMutation(t *testing.T) {
	d := TraceDataset(DatasetConfig{Seed: 29, SeriesPerClass: 4})
	ctx := context.Background()
	si, err := NewShardedIndex(d.Series, 4, Options{Strategy: FixedCoreFixedWidth, WidthFrac: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for round := 0; round < 5; round++ {
			for i, s := range d.Series {
				fresh := s
				fresh.ID = fmt.Sprintf("churn-%d-%d", round, i)
				if err := si.Add(fresh); err != nil {
					t.Errorf("Add: %v", err)
					return
				}
				if err := si.Remove(fresh.ID); err != nil {
					t.Errorf("Remove: %v", err)
					return
				}
			}
		}
	}()
	for i := 0; i < 40; i++ {
		if _, _, err := si.Search(ctx, d.Series[i%d.Len()], WithK(3)); err != nil {
			t.Fatal(err)
		}
	}
	<-done
}
