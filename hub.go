package sdtw

import (
	"context"
	"fmt"
	"math"

	"sdtw/internal/hub"
)

// StreamMatch is one confirmed subsequence occurrence on one hub stream:
// the query pattern QueryID matched the region [Start, End] (inclusive
// absolute stream positions) of stream StreamID at distance Distance.
type StreamMatch = hub.Match

// HubStats is a snapshot of a Hub's accounting: live registry sizes,
// points accepted/processed/rejected, SPRING column advances run and
// skipped by the time-domain prefilter, and matches delivered, with a
// per-query breakdown.
type HubStats = hub.Stats

// HubQueryStats is the per-query slice of HubStats.
type HubQueryStats = hub.QueryStats

// hubConfig is the resolved form of a HubOption list.
type hubConfig struct {
	streamBuffer int
	matchBuffer  int
	workers      int
	noPrefilter  bool
}

// HubOption configures a NewHub call, mirroring the MonitorOption idiom
// of the single-stream surface.
type HubOption func(*hubConfig)

// WithStreamBuffer sets the per-stream pending-point capacity: a
// PushBatch that would exceed it reports ErrHubBackpressure and consumes
// nothing. n <= 0 keeps the default (4096 points).
func WithStreamBuffer(n int) HubOption {
	return func(c *hubConfig) { c.streamBuffer = n }
}

// WithMatchBuffer sets the Matches channel capacity. A slow consumer
// eventually stalls processing and surfaces as ErrHubBackpressure at the
// producers. n <= 0 keeps the default (1024 matches).
func WithMatchBuffer(n int) HubOption {
	return func(c *hubConfig) { c.matchBuffer = n }
}

// WithHubWorkers sets how many processing goroutines Run starts. n <= 0
// means GOMAXPROCS.
func WithHubWorkers(n int) HubOption {
	return func(c *hubConfig) { c.workers = n }
}

// WithoutPrefilter disables the time-domain prefilter (an A/B switch:
// emissions are bit-identical either way, the prefilter only skips
// provably matchless column advances; see the README's Fleet streaming
// section).
func WithoutPrefilter() HubOption {
	return func(c *hubConfig) { c.noPrefilter = true }
}

// Hub is the fleet-scale streaming surface: many independent streams
// matched against a shared set of standing queries in one process, with
// per-stream×query SPRING state pooled in slab arenas, a time-domain
// prefilter that skips the per-point recurrence for stream values
// provably outside every emittable match, and bounded, backpressured
// batch ingestion.
//
// Use a Monitor for one stream whose matches you want returned from the
// Push call itself; use a Hub when there are many streams, when queries
// come and go at runtime, or when producers must never block on
// processing (a full pending buffer is an explicit ErrHubBackpressure,
// not a stall). See the README's Fleet streaming section for the full
// decision table and the backpressure contract.
//
// Lifecycle: add queries and streams (in any order, at any time), start
// Run(ctx) on a goroutine, push points from any number of goroutines,
// and consume Matches() promptly. CloseStream drains a single stream and
// recycles its state; Flush drains everything and closes Matches.
type Hub struct {
	h *hub.Hub
}

// NewHub builds an empty fleet hub. Of opts, the hub uses PointDistance
// (nil selects the squared-difference cost, which also enables the
// monomorphized kernels and the time-domain prefilter); band options do
// not apply to open-begin subsequence alignment.
func NewHub(opts Options, hopts ...HubOption) *Hub {
	var cfg hubConfig
	for _, o := range hopts {
		o(&cfg)
	}
	return &Hub{h: hub.New(hub.Config{
		StreamBuffer:     cfg.streamBuffer,
		MatchBuffer:      cfg.matchBuffer,
		Workers:          cfg.workers,
		DisablePrefilter: cfg.noPrefilter,
		Dist:             opts.PointDistance,
	})}
}

// AddQuery registers a standing query under id. The hub only streams
// thresholded emissions, so WithMatchThreshold is required (WithBestOnly
// does not apply); WithMinGap is honoured per stream. Existing streams
// pick the query up at their next processed point, and its matches carry
// absolute stream positions.
func (h *Hub) AddQuery(id string, query Series, mopts ...MonitorOption) error {
	cfg := monitorConfig{threshold: math.Inf(1)}
	for _, o := range mopts {
		o(&cfg)
	}
	if !cfg.thresholdSet || cfg.bestOnly {
		return fmt.Errorf("sdtw: Hub.AddQuery %q: a hub query needs WithMatchThreshold (best-only tracking has no streaming emission)", id)
	}
	if cfg.minGap < 0 {
		return fmt.Errorf("sdtw: Hub.AddQuery %q: negative WithMinGap %d", id, cfg.minGap)
	}
	return h.h.AddQuery(hub.Query{
		ID:        id,
		Values:    query.Values,
		Threshold: cfg.threshold,
		MinGap:    cfg.minGap,
	})
}

// RemoveQuery unregisters a standing query. Matches already confirmed
// may still be delivered; each stream recycles the query's state as it
// observes the removal.
func (h *Hub) RemoveQuery(id string) error { return h.h.RemoveQuery(id) }

// AddStream registers a stream and pre-warms its per-query SPRING state
// from the arenas, so pushing to it allocates nothing.
func (h *Hub) AddStream(id string) error { return h.h.AddStream(id) }

// CloseStream unregisters a stream: its buffered points are processed,
// its pending matches are confirmed and delivered, and its per-query
// state is recycled. With Run active the drain is asynchronous; without
// it the caller drains inline.
func (h *Hub) CloseStream(id string) error { return h.h.CloseStream(id) }

// Push ingests one point on one stream; see PushBatch.
//
//sdtw:hotpath
func (h *Hub) Push(streamID string, v float64) error { return h.h.Push(streamID, v) }

// PushBatch ingests a batch of points on one stream. It never blocks on
// processing: points land in the stream's bounded pending buffer and a
// full buffer reports ErrHubBackpressure, consuming nothing. Points are
// processed strictly in push order per stream; different streams may be
// pushed concurrently.
//
//sdtw:hotpath
func (h *Hub) PushBatch(streamID string, values []float64) error {
	return h.h.PushBatch(streamID, values)
}

// Matches is the delivery channel: every confirmed match is sent here,
// per stream in emission order (end position, then query addition
// order). Consume it promptly — when it fills, processing stalls and
// producers see ErrHubBackpressure. Flush closes it.
func (h *Hub) Matches() <-chan StreamMatch { return h.h.Matches() }

// Run processes scheduled streams on the hub's worker pool until ctx is
// cancelled (returning ctx.Err() and closing the hub) or Flush drains it
// (returning nil). A nil ctx never cancels. Call it once, on its own
// goroutine. Without Run, pushes buffer and CloseStream/Flush drain on
// the caller — the synchronous mode the tests and examples use.
func (h *Hub) Run(ctx context.Context) error { return h.h.Run(ctx) }

// Flush shuts the hub down: every stream's buffered points are
// processed, every pending match is confirmed and delivered, state is
// recycled, Matches is closed and an active Run returns nil. A
// cancelled ctx abandons the drain (Matches stays open, the hub stays
// closed) and returns ctx.Err(). Flushing twice reports ErrHubClosed.
func (h *Hub) Flush(ctx context.Context) error { return h.h.Flush(ctx) }

// Stats returns a snapshot of the hub's accounting. Safe to call
// concurrently with everything.
func (h *Hub) Stats() HubStats { return h.h.Stats() }
