package sdtw

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"sdtw/internal/band"
	"sdtw/internal/lower"
)

// envelopeRadius derives the admissible LB_Keogh envelope radius the same
// way NewIndex does: from the lowered band config via band.EnvelopeRadius.
func envelopeRadius(o Options, m int) int {
	return band.EnvelopeRadius(o.toCore().Band, m)
}

// cascadeConfigs spans every band strategy (plus the width and symmetry
// options that change the band geometry) so the exactness and
// admissibility properties are exercised against each envelope radius
// derivation.
func cascadeConfigs() []Options {
	return []Options{
		{Strategy: FullGrid},
		{Strategy: FixedCoreFixedWidth, WidthFrac: 0.06},
		{Strategy: FixedCoreFixedWidth, WidthFrac: 0.10},
		{Strategy: FixedCoreFixedWidth, WidthFrac: 0.20},
		{Strategy: FixedCoreAdaptiveWidth},
		{Strategy: FixedCoreAdaptiveWidth, MaxWidthFrac: 0.30},
		{Strategy: AdaptiveCoreFixedWidth, WidthFrac: 0.10},
		{Strategy: AdaptiveCoreAdaptiveWidth},
		{Strategy: AdaptiveCoreAdaptiveWidth, Symmetric: true},
		{Strategy: AdaptiveCoreAdaptiveWidthAvg},
		{Strategy: ItakuraBand},
		// Degenerate slope the builder resets to 2: the envelope radius
		// must track the band actually built, not the raw option.
		{Strategy: ItakuraBand, Slope: 1},
	}
}

// randomWalkSeries generates a labeled collection of random-walk series.
// With jitter > 0 the lengths vary by up to jitter samples, which
// disables the (equal-length) LB_Keogh stage and exercises the
// Kim-only cascade.
func randomWalkSeries(rng *rand.Rand, n, length, jitter int) []Series {
	out := make([]Series, n)
	for i := range out {
		l := length
		if jitter > 0 {
			l += rng.Intn(2*jitter+1) - jitter
		}
		v := make([]float64, l)
		x := rng.NormFloat64()
		for t := range v {
			x += rng.NormFloat64() * 0.3
			v[t] = x
		}
		out[i] = NewSeries(fmt.Sprintf("rw-%d", i), i%3, v)
	}
	return out
}

// bruteTopK is the reference scan the cascade must agree with exactly: the
// engine's distance to every candidate, ranked ascending with ties broken
// by position.
func bruteTopK(t *testing.T, ix *Index, query Series, k int) []Neighbor {
	t.Helper()
	var all []Neighbor
	for i := 0; i < ix.Len(); i++ {
		s := ix.Series(i)
		if s.ID != "" && s.ID == query.ID {
			continue
		}
		res, err := ix.Engine().DistanceSeries(query, s)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, Neighbor{Pos: i, Distance: res.Distance})
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].Distance != all[b].Distance {
			return all[a].Distance < all[b].Distance
		}
		return all[a].Pos < all[b].Pos
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

// TestCascadeMatchesBruteForce is the exactness property: on randomized
// collections and every band strategy, the cascaded parallel Search returns
// the same neighbours at the same distances as a brute-force scan.
func TestCascadeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	collections := map[string][]Series{
		"equal-length":   randomWalkSeries(rng, 18, 64, 0),
		"unequal-length": randomWalkSeries(rng, 14, 60, 8),
	}
	for collName, data := range collections {
		for _, opts := range cascadeConfigs() {
			name := fmt.Sprintf("%s/%v", collName, opts.Strategy)
			if opts.Symmetric {
				name += "+sym"
			}
			if opts.MaxWidthFrac > 0 {
				name += "+maxw"
			}
			if opts.Strategy == FixedCoreFixedWidth {
				name += fmt.Sprintf("+w=%g", opts.WidthFrac)
			}
			if opts.Slope != 0 {
				name += fmt.Sprintf("+slope=%g", opts.Slope)
			}
			opts := opts
			data := data
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				ix, err := NewIndex(data, opts)
				if err != nil {
					t.Fatal(err)
				}
				queries := []Series{data[0], data[len(data)/2], data[len(data)-1]}
				ext := randomWalkSeries(rand.New(rand.NewSource(99)), 1, 64, 0)[0]
				ext.ID = "external"
				queries = append(queries, ext)
				for qi, q := range queries {
					for _, k := range []int{1, 3, 100} {
						want := bruteTopK(t, ix, q, k)
						got, stats, err := ix.Search(context.Background(), q, WithK(k))
						if err != nil {
							t.Fatal(err)
						}
						if len(got) != len(want) {
							t.Fatalf("query %d k=%d: got %d neighbours, want %d", qi, k, len(got), len(want))
						}
						for i := range got {
							if got[i] != want[i] {
								t.Fatalf("query %d k=%d rank %d: got %+v, want %+v (stats %v)",
									qi, k, i, got[i], want[i], stats)
							}
						}
						if total := stats.PrunedSketch + stats.PrunedKim + stats.PrunedKeogh + stats.Evaluated; total != stats.Candidates {
							t.Fatalf("stats do not partition candidates: %v", stats)
						}
					}
				}
			})
		}
	}
}

// TestCascadeAdmissibility is the property the cascade's exactness rests
// on: on random pairs and every strategy, LB_Kim and LB_Keogh (at the
// index's derived envelope radius) never exceed the banded sDTW distance,
// which itself never underestimates exact DTW.
func TestCascadeAdmissibility(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := randomWalkSeries(rng, 12, 80, 0)
	for _, opts := range cascadeConfigs() {
		engine := NewEngine(opts)
		for trial := 0; trial < 30; trial++ {
			x := data[rng.Intn(len(data))]
			y := data[rng.Intn(len(data))]
			res, err := engine.DistanceSeries(x, y)
			if err != nil {
				t.Fatal(err)
			}
			exact, err := DTW(x.Values, y.Values)
			if err != nil {
				t.Fatal(err)
			}
			if res.Distance < exact-1e-9*(1+math.Abs(exact)) {
				t.Fatalf("%v: banded distance %v below exact DTW %v", opts.Strategy, res.Distance, exact)
			}
			kim, err := lower.Kim(x.Values, y.Values, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := lower.ValidateBound(kim, res.Distance); err != nil {
				t.Fatalf("%v: LB_Kim inadmissible: %v", opts.Strategy, err)
			}
			env := lower.NewEnvelope(y.Values, envelopeRadius(opts, y.Len()))
			keogh, err := lower.Keogh(x.Values, env, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := lower.ValidateBound(keogh, res.Distance); err != nil {
				t.Fatalf("%v (radius %d): LB_Keogh inadmissible: %v",
					opts.Strategy, envelopeRadius(opts, y.Len()), err)
			}
		}
	}
}

// TestCascadePrunesMajority pins the acceptance bar: on a Table-1-style
// workload with the classical Sakoe-Chiba band, the cascade discards the
// majority of candidates before any DTW grid work.
func TestCascadePrunesMajority(t *testing.T) {
	d := TraceDataset(DatasetConfig{Seed: 42, SeriesPerClass: 15})
	ix, err := NewIndex(d.Series, Options{Strategy: FixedCoreFixedWidth, WidthFrac: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := ix.SearchBatch(context.Background(), d.Series, WithK(5))
	if err != nil {
		t.Fatal(err)
	}
	if stats.PruneRate() <= 0.5 {
		t.Fatalf("cascade pruned only %.2f of candidates (%v)", stats.PruneRate(), stats)
	}
	if stats.PrunedKeogh == 0 {
		t.Fatalf("LB_Keogh stage never fired: %v", stats)
	}
	if stats.CellsGain() <= 0.5 {
		t.Fatalf("cascade saved only %.2f of DP cells (%v)", stats.CellsGain(), stats)
	}
}

// TestQueryStatsAccounting checks the per-stage numbers are coherent on
// the default adaptive configuration.
func TestQueryStatsAccounting(t *testing.T) {
	d := TraceDataset(DatasetConfig{Seed: 3, SeriesPerClass: 5})
	ix, err := NewIndex(d.Series, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	nbrs, stats, err := ix.Search(context.Background(), d.Series[0], WithK(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(nbrs) != 5 {
		t.Fatalf("got %d neighbours", len(nbrs))
	}
	if stats.Candidates != ix.Len()-1 {
		t.Fatalf("candidates %d, want %d", stats.Candidates, ix.Len()-1)
	}
	if stats.Evaluated == 0 || stats.Cells == 0 || stats.GridCells == 0 {
		t.Fatalf("missing work accounting: %v", stats)
	}
	if stats.Evaluated+stats.PrunedSketch+stats.PrunedKim+stats.PrunedKeogh != stats.Candidates {
		t.Fatalf("stages do not partition candidates: %v", stats)
	}
	if stats.WallTime <= 0 || stats.DPTime <= 0 {
		t.Fatalf("missing timings: %v", stats)
	}
	if s := stats.String(); s == "" {
		t.Fatal("empty stats string")
	}
}

// TestSearchBatchMatchesSingle checks the batch entry point returns exactly
// the per-query results and that LabelsAll agrees with Labels.
func TestSearchBatchMatchesSingle(t *testing.T) {
	d := TraceDataset(DatasetConfig{Seed: 11, SeriesPerClass: 4})
	ix, err := NewIndex(d.Series, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	const k = 3
	batch, stats, err := ix.SearchBatch(context.Background(), d.Series, WithK(k))
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(d.Series) {
		t.Fatalf("batch returned %d results for %d queries", len(batch), len(d.Series))
	}
	if stats.Candidates != len(d.Series)*(len(d.Series)-1) {
		t.Fatalf("batch stats candidates %d, want %d", stats.Candidates, len(d.Series)*(len(d.Series)-1))
	}
	for i, s := range d.Series {
		single, _, err := ix.Search(context.Background(), s, WithK(k))
		if err != nil {
			t.Fatal(err)
		}
		if len(single) != len(batch[i]) {
			t.Fatalf("query %d: batch %d vs single %d neighbours", i, len(batch[i]), len(single))
		}
		for j := range single {
			if single[j] != batch[i][j] {
				t.Fatalf("query %d rank %d: batch %+v vs single %+v", i, j, batch[i][j], single[j])
			}
		}
	}

	all, _, err := ix.LabelsAll(context.Background(), WithK(k))
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range d.Series {
		want, err := ix.Labels(context.Background(), s, WithK(k))
		if err != nil {
			t.Fatal(err)
		}
		if len(all[i]) != len(want) {
			t.Fatalf("series %d: LabelsAll %v vs Labels %v", i, all[i], want)
		}
		for j := range want {
			if all[i][j] != want[j] {
				t.Fatalf("series %d: LabelsAll %v vs Labels %v", i, all[i], want)
			}
		}
	}

	if _, _, err := ix.SearchBatch(context.Background(), nil, WithK(k)); err == nil {
		t.Fatal("empty batch accepted")
	}
}

// TestLabelsAllWithoutIDs checks leave-one-out holds by position when
// series carry no IDs: with k=1 and two unlabeled-ID series, each must be
// classified by the *other* one — a self-match at distance 0 would hand
// every series its own label and silently inflate accuracy.
func TestLabelsAllWithoutIDs(t *testing.T) {
	data := []Series{
		NewSeries("", 0, []float64{0, 1, 2, 3, 2, 1, 0, 1}),
		NewSeries("", 1, []float64{5, 4, 3, 2, 3, 4, 5, 4}),
	}
	ix, err := NewIndex(data, Options{Strategy: FullGrid})
	if err != nil {
		t.Fatal(err)
	}
	labels, stats, err := ix.LabelsAll(context.Background(), WithK(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(labels[0]) != 1 || labels[0][0] != 1 {
		t.Fatalf("series 0 got labels %v, want [1] (its only true neighbour)", labels[0])
	}
	if len(labels[1]) != 1 || labels[1][0] != 0 {
		t.Fatalf("series 1 got labels %v, want [0]", labels[1])
	}
	if stats.Candidates != 2 {
		t.Fatalf("expected 1 candidate per query after positional self-exclusion, got %d total", stats.Candidates)
	}
}

// TestCascadeCustomPointDistance checks the cascade degrades to an exact
// parallel scan when a custom point cost voids the bounds' assumptions.
func TestCascadeCustomPointDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data := randomWalkSeries(rng, 10, 48, 0)
	abs := func(a, b float64) float64 { return math.Abs(a - b) }
	ix, err := NewIndex(data, Options{Strategy: AdaptiveCoreAdaptiveWidth, PointDistance: abs})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := ix.Search(context.Background(), data[0], WithK(4))
	if err != nil {
		t.Fatal(err)
	}
	if stats.PrunedSketch+stats.PrunedKim+stats.PrunedKeogh != 0 {
		t.Fatalf("bounds fired despite custom point distance: %v", stats)
	}
	if stats.Evaluated != stats.Candidates {
		t.Fatalf("scan skipped candidates: %v", stats)
	}
	want := bruteTopK(t, ix, data[0], 4)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}
