package sdtw

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"
)

// hubMatchKey is the comparable identity of an emission: the acceptance
// property compares (stream, query, start, end, distance) tuples
// bit-exactly, so Distance is carried as raw bits.
type hubMatchKey struct {
	stream, query string
	start, end    int
	distBits      uint64
}

func hubKey(m StreamMatch) hubMatchKey {
	return hubMatchKey{m.Stream, m.Query, m.Start, m.End, math.Float64bits(m.Distance)}
}

func sortHubKeys(ks []hubMatchKey) {
	sort.Slice(ks, func(i, j int) bool {
		a, b := ks[i], ks[j]
		if a.stream != b.stream {
			return a.stream < b.stream
		}
		if a.query != b.query {
			return a.query < b.query
		}
		if a.start != b.start {
			return a.start < b.start
		}
		return a.end < b.end
	})
}

// hubCollect drains the Matches channel into keys until it closes.
func hubCollect(h *Hub, into *[]hubMatchKey, wg *sync.WaitGroup) {
	defer wg.Done()
	for m := range h.Matches() {
		*into = append(*into, hubKey(m))
	}
}

// hubPushAll pushes vals to streamID in random batch sizes, retrying on
// backpressure.
func hubPushAll(t testing.TB, h *Hub, streamID string, vals []float64, rng *rand.Rand) {
	for off := 0; off < len(vals); {
		n := 1 + rng.Intn(48)
		if off+n > len(vals) {
			n = len(vals) - off
		}
		err := h.PushBatch(streamID, vals[off:off+n])
		if err == nil {
			off += n
			continue
		}
		if !errors.Is(err, ErrHubBackpressure) {
			t.Errorf("PushBatch(%s): %v", streamID, err)
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// TestHubMatchesMonitorProperty is the fleet acceptance property: over
// random queries, thresholds, gaps and streams, the Hub's emissions
// (stream, query, start, end, distance) are bit-identical to running one
// Monitor per stream over the same queries — with the time-domain
// prefilter both enabled and disabled.
func TestHubMatchesMonitorProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 8; trial++ {
		threshold := []float64{0.05, 0.5, 4, 40}[trial%4]
		minGap := rng.Intn(3)
		nq := 2 + rng.Intn(3)
		queries := make([]Series, nq)
		for qi := range queries {
			vals := make([]float64, 2+rng.Intn(10))
			for i := range vals {
				vals[i] = rng.NormFloat64()
			}
			queries[qi] = NewSeries(fmt.Sprintf("q%d", qi), 0, vals)
		}
		streams := map[string][]float64{}
		for si := 0; si < 6; si++ {
			vals := make([]float64, 200+rng.Intn(400))
			for i := range vals {
				// Mix of in-band noise and far excursions so the prefilter
				// sees live and dead stretches.
				vals[i] = rng.NormFloat64()
				if rng.Intn(16) == 0 {
					vals[i] += 40
				}
			}
			streams[fmt.Sprintf("s%d", si)] = vals
		}

		// Ground truth: one Monitor per stream over all queries.
		want := make([]hubMatchKey, 0, 64)
		for id, vals := range streams {
			m, err := NewMonitor(queries, Options{}, WithMatchThreshold(threshold), WithMinGap(minGap))
			if err != nil {
				t.Fatal(err)
			}
			emit, err := m.PushBatch(context.Background(), vals)
			if err != nil {
				t.Fatal(err)
			}
			fin, err := m.Flush()
			if err != nil {
				t.Fatal(err)
			}
			for _, mm := range append(emit, fin...) {
				want = append(want, hubMatchKey{id, mm.QueryID, mm.Start, mm.End, math.Float64bits(mm.Distance)})
			}
		}
		sortHubKeys(want)

		for _, hopts := range [][]HubOption{
			{WithHubWorkers(3), WithMatchBuffer(1 << 15)},
			{WithHubWorkers(3), WithMatchBuffer(1 << 15), WithoutPrefilter()},
		} {
			h := NewHub(Options{}, hopts...)
			for _, q := range queries {
				if err := h.AddQuery(q.ID, q, WithMatchThreshold(threshold), WithMinGap(minGap)); err != nil {
					t.Fatal(err)
				}
			}
			for id := range streams {
				if err := h.AddStream(id); err != nil {
					t.Fatal(err)
				}
			}
			runErr := make(chan error, 1)
			go func() { runErr <- h.Run(context.Background()) }()
			var got []hubMatchKey
			var collectWG sync.WaitGroup
			collectWG.Add(1)
			go hubCollect(h, &got, &collectWG)
			var pushWG sync.WaitGroup
			for id, vals := range streams {
				pushWG.Add(1)
				go func(id string, vals []float64, seed int64) {
					defer pushWG.Done()
					hubPushAll(t, h, id, vals, rand.New(rand.NewSource(seed)))
				}(id, vals, rng.Int63())
			}
			pushWG.Wait()
			if err := h.Flush(context.Background()); err != nil {
				t.Fatal(err)
			}
			collectWG.Wait()
			if err := <-runErr; err != nil {
				t.Fatalf("Run: %v", err)
			}
			sortHubKeys(got)
			if len(got) != len(want) {
				t.Fatalf("trial %d (opts %d): hub emitted %d matches, monitors %d", trial, len(hopts), len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d: emission %d diverged: hub %+v, monitor %+v", trial, i, got[i], want[i])
				}
			}
		}
	}
}

// TestHubPrefilterAccounting: a stream dominated by far-out-of-band
// values must show a high prefilter skip rate in HubStats, and the
// prefilter-off hub must show none.
func TestHubPrefilterAccounting(t *testing.T) {
	stream := make([]float64, 4096)
	for i := range stream {
		stream[i] = 1e6 // dead for a unit-range query at any sane threshold
	}
	for _, tc := range []struct {
		name     string
		opt      []HubOption
		wantSkip bool
	}{
		{"prefilter", nil, true},
		{"no-prefilter", []HubOption{WithoutPrefilter()}, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			h := NewHub(Options{}, tc.opt...)
			if err := h.AddQuery("q", NewSeries("q", 0, []float64{0, 1, 0}), WithMatchThreshold(0.5)); err != nil {
				t.Fatal(err)
			}
			if err := h.AddStream("s"); err != nil {
				t.Fatal(err)
			}
			if err := h.PushBatch("s", stream); err != nil {
				t.Fatal(err)
			}
			if err := h.Flush(nil); err != nil {
				t.Fatal(err)
			}
			st := h.Stats()
			if st.Processed != int64(len(stream)) {
				t.Fatalf("processed %d, want %d", st.Processed, len(stream))
			}
			if tc.wantSkip {
				if st.Skipped != int64(len(stream)) {
					t.Fatalf("skipped %d of %d all-dead points", st.Skipped, len(stream))
				}
				if st.Appends != 0 {
					t.Fatalf("appends %d on an all-dead stream, want 0", st.Appends)
				}
			} else {
				if st.Skipped != 0 {
					t.Fatalf("prefilter disabled but skipped %d", st.Skipped)
				}
				if st.Appends != int64(len(stream)) {
					t.Fatalf("appends %d, want %d", st.Appends, len(stream))
				}
			}
			if len(st.PerQuery) != 1 || st.PerQuery[0].ID != "q" ||
				st.PerQuery[0].Appends+st.PerQuery[0].Skipped != int64(len(stream)) {
				t.Fatalf("per-query accounting off: %+v", st.PerQuery)
			}
		})
	}
}

// TestHubPushNoAlloc is the fleet ingest acceptance check: with arenas
// pre-warmed and quiet in-band points, pushing a point through the hub
// allocates nothing — on the producer side or the worker side (the
// counter is process-wide).
func TestHubPushNoAlloc(t *testing.T) {
	h := NewHub(Options{}, WithHubWorkers(1), WithStreamBuffer(1<<16))
	if err := h.AddQuery("q", NewSeries("q", 0, []float64{0, 1, 0}), WithMatchThreshold(0.01)); err != nil {
		t.Fatal(err)
	}
	if err := h.AddStream("s"); err != nil {
		t.Fatal(err)
	}
	runErr := make(chan error, 1)
	go func() { runErr <- h.Run(context.Background()) }()
	// Warm up: buffer growth, first schedule, state attach all happen here.
	for i := 0; i < 500; i++ {
		if err := h.Push("s", 0.5); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(2000, func() {
		if err := h.Push("s", 0.5); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("hub Push allocates %.1f objects per point after warm-up, want 0", allocs)
	}
	if err := h.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	for range h.Matches() {
	}
	if err := <-runErr; err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// waitGoroutines polls until the goroutine count settles back to the
// baseline (plus slack for the test runner).
func waitGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if after := runtime.NumGoroutine(); after <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestHubConcurrentChurn exercises the COW registry under -race:
// concurrent PushBatch across streams against AddQuery/RemoveQuery,
// CloseStream/AddStream and Stats churn, then a full Flush with a
// goroutine-leak check.
func TestHubConcurrentChurn(t *testing.T) {
	before := runtime.NumGoroutine()
	h := NewHub(Options{}, WithHubWorkers(4), WithMatchBuffer(1<<12), WithStreamBuffer(256))
	if err := h.AddQuery("base", NewSeries("base", 0, []float64{0, 1, 0}), WithMatchThreshold(0.3)); err != nil {
		t.Fatal(err)
	}
	const pushStreams = 6
	for i := 0; i < pushStreams; i++ {
		if err := h.AddStream(fmt.Sprintf("s%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	runErr := make(chan error, 1)
	go func() { runErr <- h.Run(context.Background()) }()
	var drainWG sync.WaitGroup
	drainWG.Add(1)
	go func() {
		defer drainWG.Done()
		for range h.Matches() {
		}
	}()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Pushers: steady batches on the stable streams.
	for i := 0; i < pushStreams; i++ {
		wg.Add(1)
		go func(id string, seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			batch := make([]float64, 32)
			for {
				select {
				case <-stop:
					return
				default:
				}
				for j := range batch {
					batch[j] = rng.NormFloat64()
				}
				if err := h.PushBatch(id, batch); err != nil && !errors.Is(err, ErrHubBackpressure) {
					t.Errorf("push %s: %v", id, err)
					return
				}
			}
		}(fmt.Sprintf("s%d", i), int64(i))
	}
	// Query churner.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := fmt.Sprintf("churn%d", i%3)
			if err := h.AddQuery(id, NewSeries(id, 0, []float64{1, 2, 1}), WithMatchThreshold(0.2)); err != nil {
				t.Errorf("AddQuery: %v", err)
				return
			}
			if err := h.RemoveQuery(id); err != nil {
				t.Errorf("RemoveQuery: %v", err)
				return
			}
		}
	}()
	// Stream churner: its own stream IDs, never the pushers'.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := fmt.Sprintf("ephemeral%d", i%4)
			if err := h.AddStream(id); err != nil {
				t.Errorf("AddStream: %v", err)
				return
			}
			if err := h.Push(id, 1); err != nil && !errors.Is(err, ErrHubBackpressure) {
				t.Errorf("push ephemeral: %v", err)
				return
			}
			if err := h.CloseStream(id); err != nil {
				t.Errorf("CloseStream: %v", err)
				return
			}
		}
	}()
	// Stats reader.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := h.Stats()
			if st.Processed > st.Points {
				t.Errorf("processed %d > points %d", st.Processed, st.Points)
				return
			}
		}
	}()

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	if err := h.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	drainWG.Wait()
	if err := <-runErr; err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := h.Stats()
	if st.Streams != 0 {
		t.Fatalf("streams after Flush: %d, want 0", st.Streams)
	}
	if st.Processed != st.Points {
		t.Fatalf("flushed hub processed %d of %d accepted points", st.Processed, st.Points)
	}
	waitGoroutines(t, before)
}

// TestHubRunCancelNoLeak: cancelling Run tears the workers down without
// leaking goroutines, and the hub reports ErrHubClosed afterwards.
func TestHubRunCancelNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	h := NewHub(Options{}, WithHubWorkers(4))
	if err := h.AddQuery("q", NewSeries("q", 0, []float64{0, 1, 0}), WithMatchThreshold(0.3)); err != nil {
		t.Fatal(err)
	}
	if err := h.AddStream("s"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- h.Run(ctx) }()
	if err := h.PushBatch("s", make([]float64, 128)); err != nil {
		t.Fatal(err)
	}
	cancel()
	select {
	case err := <-runErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Run: %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancel")
	}
	if err := h.Push("s", 1); !errors.Is(err, ErrHubClosed) {
		t.Fatalf("push after cancelled Run: %v, want ErrHubClosed", err)
	}
	waitGoroutines(t, before)
}

// TestHubAddQueryValidation pins the public AddQuery contract: a
// threshold option is mandatory, best-only is rejected, and minGap must
// be non-negative.
func TestHubAddQueryValidation(t *testing.T) {
	h := NewHub(Options{})
	q := NewSeries("q", 0, []float64{1, 2})
	if err := h.AddQuery("q", q); err == nil {
		t.Fatal("AddQuery without WithMatchThreshold accepted")
	}
	if err := h.AddQuery("q", q, WithMatchThreshold(1), WithBestOnly()); err == nil {
		t.Fatal("AddQuery with WithBestOnly accepted")
	}
	if err := h.AddQuery("q", q, WithMatchThreshold(1), WithMinGap(-1)); err == nil {
		t.Fatal("AddQuery with negative WithMinGap accepted")
	}
	if err := h.AddQuery("q", q, WithMatchThreshold(math.Inf(1))); err == nil {
		t.Fatal("AddQuery with infinite threshold accepted")
	}
	if err := h.AddQuery("q", q, WithMatchThreshold(1)); err != nil {
		t.Fatal(err)
	}
	if err := h.AddQuery("q", q, WithMatchThreshold(1)); !IsErr(err, ErrDuplicateID) {
		t.Fatalf("duplicate query ID: %v, want ErrDuplicateID", err)
	}
}
