package sdtw

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
)

func buildIndex(t *testing.T) (*Index, *Dataset) {
	t.Helper()
	d := TraceDataset(DatasetConfig{Seed: 5, SeriesPerClass: 5})
	idx, err := NewIndex(d.Series, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return idx, d
}

func TestIndexConstruction(t *testing.T) {
	idx, d := buildIndex(t)
	if idx.Len() != d.Len() {
		t.Fatalf("index size %d, want %d", idx.Len(), d.Len())
	}
	if idx.Series(0).ID != d.Series[0].ID {
		t.Fatal("Series accessor wrong")
	}
	if idx.Engine() == nil {
		t.Fatal("Engine accessor nil")
	}
	if idx.Radius() != -1 {
		t.Fatalf("engine-backed index Radius() = %d, want -1", idx.Radius())
	}
}

func TestIndexRejectsBadInput(t *testing.T) {
	if _, err := NewIndex(nil, DefaultOptions()); !errors.Is(err, ErrEmptyCollection) {
		t.Fatalf("empty collection: got %v, want ErrEmptyCollection", err)
	}
	bad := []Series{NewSeries("a", 0, []float64{1, 2}), NewSeries("a", 0, []float64{3, 4})}
	if _, err := NewIndex(bad, DefaultOptions()); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("duplicate IDs: got %v, want ErrDuplicateID", err)
	}
	empty := []Series{NewSeries("a", 0, nil)}
	if _, err := NewIndex(empty, DefaultOptions()); !errors.Is(err, ErrEmptySeries) {
		t.Fatalf("empty series: got %v, want ErrEmptySeries", err)
	}
}

func TestIndexSearchExcludesSelf(t *testing.T) {
	idx, d := buildIndex(t)
	q := d.Series[0]
	nbrs, _, err := idx.Search(context.Background(), q, WithK(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(nbrs) != 5 {
		t.Fatalf("got %d neighbours", len(nbrs))
	}
	for _, nb := range nbrs {
		if d.Series[nb.Pos].ID == q.ID {
			t.Fatal("query returned as its own neighbour")
		}
	}
	// Ascending distances.
	for i := 1; i < len(nbrs); i++ {
		if nbrs[i].Distance < nbrs[i-1].Distance {
			t.Fatal("neighbours not sorted")
		}
	}
}

func TestIndexSearchExternalQuery(t *testing.T) {
	idx, _ := buildIndex(t)
	ext := TraceDataset(DatasetConfig{Seed: 99, SeriesPerClass: 1})
	q := ext.Series[0]
	q.ID = "external-query"
	nbrs, _, err := idx.Search(context.Background(), q, WithK(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(nbrs) != 3 {
		t.Fatalf("got %d neighbours", len(nbrs))
	}
}

func TestIndexSearchDefaultsToNearest(t *testing.T) {
	idx, d := buildIndex(t)
	// Without WithK a search returns the single nearest neighbour.
	nbrs, _, err := idx.Search(context.Background(), d.Series[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(nbrs) != 1 {
		t.Fatalf("default search returned %d neighbours, want 1", len(nbrs))
	}
	top, _, err := idx.Search(context.Background(), d.Series[0], WithK(1))
	if err != nil {
		t.Fatal(err)
	}
	if nbrs[0] != top[0] {
		t.Fatalf("default %+v != WithK(1) %+v", nbrs[0], top[0])
	}
}

func TestIndexSearchOversizedKTruncates(t *testing.T) {
	idx, d := buildIndex(t)
	// k larger than the collection truncates instead of failing.
	nbrs, _, err := idx.Search(context.Background(), d.Series[0], WithK(1000))
	if err != nil {
		t.Fatal(err)
	}
	if len(nbrs) != idx.Len()-1 {
		t.Fatalf("oversized k returned %d, want %d", len(nbrs), idx.Len()-1)
	}
}

func TestIndexLabels(t *testing.T) {
	idx, d := buildIndex(t)
	// Nearest neighbours of a series are dominated by its own class in
	// this structured workload, so classification should recover the
	// true label for most queries.
	correct := 0
	for i := 0; i < d.Len(); i++ {
		labels, err := idx.Labels(context.Background(), d.Series[i], WithK(3))
		if err != nil {
			t.Fatal(err)
		}
		if len(labels) == 0 {
			t.Fatal("no labels attached")
		}
		for _, l := range labels {
			if l == d.Series[i].Label {
				correct++
				break
			}
		}
	}
	if frac := float64(correct) / float64(d.Len()); frac < 0.8 {
		t.Fatalf("classification recovered only %.2f of labels", frac)
	}
}

func TestUCRRoundTripThroughPublicAPI(t *testing.T) {
	d := GunDataset(DatasetConfig{Seed: 8, SeriesPerClass: 2})
	var buf bytes.Buffer
	if err := WriteUCR(&buf, d); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), ",") {
		t.Fatal("UCR output not comma separated")
	}
	back, err := ReadUCR(&buf, "Gun")
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != d.Len() {
		t.Fatalf("round trip lost series: %d vs %d", back.Len(), d.Len())
	}
}

func TestDatasetByNamePublic(t *testing.T) {
	for _, name := range []string{"Gun", "Trace", "50Words"} {
		d, err := DatasetByName(name, DatasetConfig{Seed: 1, SeriesPerClass: 1})
		if err != nil {
			t.Fatal(err)
		}
		if d.Name != name {
			t.Fatalf("DatasetByName(%q).Name = %q", name, d.Name)
		}
	}
	if _, err := DatasetByName("bogus", DatasetConfig{}); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}
