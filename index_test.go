package sdtw

import (
	"bytes"
	"strings"
	"testing"
)

func buildIndex(t *testing.T) (*Index, *Dataset) {
	t.Helper()
	d := TraceDataset(DatasetConfig{Seed: 5, SeriesPerClass: 5})
	idx, err := NewIndex(d.Series, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return idx, d
}

func TestIndexConstruction(t *testing.T) {
	idx, d := buildIndex(t)
	if idx.Len() != d.Len() {
		t.Fatalf("index size %d, want %d", idx.Len(), d.Len())
	}
	if idx.Series(0).ID != d.Series[0].ID {
		t.Fatal("Series accessor wrong")
	}
	if idx.Engine() == nil {
		t.Fatal("Engine accessor nil")
	}
}

func TestIndexRejectsBadInput(t *testing.T) {
	if _, err := NewIndex(nil, DefaultOptions()); err == nil {
		t.Fatal("empty collection accepted")
	}
	bad := []Series{NewSeries("a", 0, []float64{1, 2}), NewSeries("a", 0, []float64{3, 4})}
	if _, err := NewIndex(bad, DefaultOptions()); err == nil {
		t.Fatal("duplicate IDs accepted")
	}
	empty := []Series{NewSeries("a", 0, nil)}
	if _, err := NewIndex(empty, DefaultOptions()); err == nil {
		t.Fatal("empty series accepted")
	}
}

func TestIndexTopKExcludesSelf(t *testing.T) {
	idx, d := buildIndex(t)
	q := d.Series[0]
	nbrs, err := idx.TopK(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(nbrs) != 5 {
		t.Fatalf("got %d neighbours", len(nbrs))
	}
	for _, nb := range nbrs {
		if d.Series[nb.Pos].ID == q.ID {
			t.Fatal("query returned as its own neighbour")
		}
	}
	// Ascending distances.
	for i := 1; i < len(nbrs); i++ {
		if nbrs[i].Distance < nbrs[i-1].Distance {
			t.Fatal("neighbours not sorted")
		}
	}
}

func TestIndexTopKExternalQuery(t *testing.T) {
	idx, _ := buildIndex(t)
	ext := TraceDataset(DatasetConfig{Seed: 99, SeriesPerClass: 1})
	q := ext.Series[0]
	q.ID = "external-query"
	nbrs, err := idx.TopK(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(nbrs) != 3 {
		t.Fatalf("got %d neighbours", len(nbrs))
	}
}

func TestIndexTopKValidation(t *testing.T) {
	idx, d := buildIndex(t)
	if _, err := idx.TopK(d.Series[0], 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	// k larger than collection truncates instead of failing.
	nbrs, err := idx.TopK(d.Series[0], 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(nbrs) != idx.Len()-1 {
		t.Fatalf("oversized k returned %d, want %d", len(nbrs), idx.Len()-1)
	}
}

func TestIndexClassify(t *testing.T) {
	idx, d := buildIndex(t)
	// Nearest neighbours of a series are dominated by its own class in
	// this structured workload, so classification should recover the
	// true label for most queries.
	correct := 0
	for i := 0; i < d.Len(); i++ {
		labels, err := idx.Classify(d.Series[i], 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(labels) == 0 {
			t.Fatal("no labels attached")
		}
		for _, l := range labels {
			if l == d.Series[i].Label {
				correct++
				break
			}
		}
	}
	if frac := float64(correct) / float64(d.Len()); frac < 0.8 {
		t.Fatalf("classification recovered only %.2f of labels", frac)
	}
}

func TestUCRRoundTripThroughPublicAPI(t *testing.T) {
	d := GunDataset(DatasetConfig{Seed: 8, SeriesPerClass: 2})
	var buf bytes.Buffer
	if err := WriteUCR(&buf, d); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), ",") {
		t.Fatal("UCR output not comma separated")
	}
	back, err := ReadUCR(&buf, "Gun")
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != d.Len() {
		t.Fatalf("round trip lost series: %d vs %d", back.Len(), d.Len())
	}
}

func TestDatasetByNamePublic(t *testing.T) {
	for _, name := range []string{"Gun", "Trace", "50Words"} {
		d, err := DatasetByName(name, DatasetConfig{Seed: 1, SeriesPerClass: 1})
		if err != nil {
			t.Fatal(err)
		}
		if d.Name != name {
			t.Fatalf("DatasetByName(%q).Name = %q", name, d.Name)
		}
	}
	if _, err := DatasetByName("bogus", DatasetConfig{}); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}
