package sdtw

import (
	"fmt"
	"math"
	"sort"

	"sdtw/internal/dtw"
	"sdtw/internal/lower"
)

// BoundStats reports how much work a lower-bound cascade saved.
type BoundStats struct {
	// Candidates is the collection size examined.
	Candidates int
	// PrunedKim and PrunedKeogh count candidates discarded by each bound
	// before any DTW grid work.
	PrunedKim, PrunedKeogh int
	// Evaluated counts candidates that required a DTW computation.
	Evaluated int
}

// PruneRate is the fraction of candidates discarded without DTW work.
func (s BoundStats) PruneRate() float64 {
	if s.Candidates == 0 {
		return 0
	}
	return float64(s.PrunedKim+s.PrunedKeogh) / float64(s.Candidates)
}

// BoundedIndex answers exact top-k DTW queries over an equal-length
// collection using the classical lower-bound cascade (LB_Kim, then
// LB_Keogh on precomputed envelopes) of Keogh's exact-indexing pipeline —
// the paper's reference [7] and the natural companion to sDTW for
// retrieval workloads. Results are exact with respect to the (optionally
// Sakoe-Chiba-windowed) DTW distance.
type BoundedIndex struct {
	data      []Series
	envelopes []lower.Envelope
	radius    int
	band      dtw.Band // empty when radius covers the full grid
	length    int
}

// NewBoundedIndex builds the index. All series must share one length.
// radius is the Sakoe-Chiba warping window in samples: both the DTW
// computation and the envelopes use it, keeping the bound exact for the
// windowed distance. radius < 0 (or >= length) selects unconstrained DTW
// with full-width envelopes.
func NewBoundedIndex(data []Series, radius int) (*BoundedIndex, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("sdtw: cannot index an empty collection")
	}
	length := data[0].Len()
	if length == 0 {
		return nil, fmt.Errorf("sdtw: series 0 is empty")
	}
	for i, s := range data {
		if s.Len() != length {
			return nil, fmt.Errorf("sdtw: series %d has length %d, want %d (bounded search needs equal lengths)", i, s.Len(), length)
		}
	}
	if radius < 0 || radius >= length {
		radius = length // unconstrained
	}
	ix := &BoundedIndex{data: data, radius: radius, length: length}
	ix.envelopes = make([]lower.Envelope, len(data))
	for i, s := range data {
		ix.envelopes[i] = lower.NewEnvelope(s.Values, radius)
	}
	if radius < length {
		ix.band = dtw.SakoeChiba(length, length, float64(2*radius+1)/float64(length))
	}
	return ix, nil
}

// Len returns the number of indexed series.
func (ix *BoundedIndex) Len() int { return len(ix.data) }

// Radius returns the effective warping window in samples.
func (ix *BoundedIndex) Radius() int { return ix.radius }

// distance computes the (windowed) DTW distance of the query to candidate i.
func (ix *BoundedIndex) distance(q []float64, i int) (float64, error) {
	if ix.radius >= ix.length {
		return dtw.Distance(q, ix.data[i].Values, nil)
	}
	d, _, err := dtw.Banded(q, ix.data[i].Values, ix.band, nil)
	return d, err
}

// TopK returns the k nearest indexed series to the query under the
// (windowed) DTW distance, exactly, using the bound cascade to skip
// candidates. Candidates sharing the query's non-empty ID are excluded,
// so leave-one-out evaluation works naturally.
func (ix *BoundedIndex) TopK(query Series, k int) ([]Neighbor, BoundStats, error) {
	var stats BoundStats
	if k <= 0 {
		return nil, stats, fmt.Errorf("sdtw: TopK needs k >= 1, got %d", k)
	}
	if query.Len() != ix.length {
		return nil, stats, fmt.Errorf("sdtw: query length %d != indexed length %d", query.Len(), ix.length)
	}
	// Candidate order: ascending LB_Keogh, so strong matches surface
	// early and the pruning threshold tightens fast.
	type cand struct {
		pos   int
		bound float64
	}
	cands := make([]cand, 0, len(ix.data))
	for i, s := range ix.data {
		if s.ID != "" && s.ID == query.ID {
			continue
		}
		b, err := lower.Keogh(query.Values, ix.envelopes[i], nil)
		if err != nil {
			return nil, stats, err
		}
		cands = append(cands, cand{pos: i, bound: b})
	}
	stats.Candidates = len(cands)
	sort.Slice(cands, func(a, b int) bool { return cands[a].bound < cands[b].bound })

	best := make([]Neighbor, 0, k)
	kth := math.Inf(1)
	insert := func(nb Neighbor) {
		best = append(best, nb)
		sort.Slice(best, func(a, b int) bool {
			if best[a].Distance != best[b].Distance {
				return best[a].Distance < best[b].Distance
			}
			return best[a].Pos < best[b].Pos
		})
		if len(best) > k {
			best = best[:k]
		}
		if len(best) == k {
			kth = best[k-1].Distance
		}
	}
	for _, c := range cands {
		if c.bound > kth {
			stats.PrunedKeogh++
			continue
		}
		kim, err := lower.Kim(query.Values, ix.data[c.pos].Values, nil)
		if err != nil {
			return nil, stats, err
		}
		if kim > kth {
			stats.PrunedKim++
			continue
		}
		d, err := ix.distance(query.Values, c.pos)
		if err != nil {
			return nil, stats, err
		}
		stats.Evaluated++
		if d <= kth || len(best) < k {
			insert(Neighbor{Pos: c.pos, Distance: d})
		}
	}
	return best, stats, nil
}
