package sdtw

import (
	"fmt"
	"math"
	"sort"

	"sdtw/internal/dtw"
	"sdtw/internal/lower"
)

// BoundStats reports how much work a lower-bound cascade saved.
type BoundStats struct {
	// Candidates is the collection size examined.
	Candidates int
	// PrunedKim and PrunedKeogh count candidates discarded by each bound
	// before any DTW grid work.
	PrunedKim, PrunedKeogh int
	// Evaluated counts candidates that required a DTW computation
	// (including ones abandoned partway through).
	Evaluated int
	// AbandonedDTW counts evaluated candidates whose DTW computation was
	// abandoned early once its partial cost — itself a valid lower bound —
	// exceeded the best-so-far threshold. Abandoned candidates are
	// included in Evaluated.
	AbandonedDTW int
	// CellsSaved counts the band cells early abandonment skipped on
	// abandoned candidates.
	CellsSaved int
}

// PruneRate is the fraction of candidates discarded without DTW work.
func (s BoundStats) PruneRate() float64 {
	if s.Candidates == 0 {
		return 0
	}
	return float64(s.PrunedKim+s.PrunedKeogh) / float64(s.Candidates)
}

// AbandonRate is the fraction of evaluated candidates whose DTW
// computation was abandoned before filling the whole band.
func (s BoundStats) AbandonRate() float64 {
	if s.Evaluated == 0 {
		return 0
	}
	return float64(s.AbandonedDTW) / float64(s.Evaluated)
}

// BoundedIndex answers exact top-k DTW queries over an equal-length
// collection using the classical lower-bound cascade (LB_Kim, then
// LB_Keogh on precomputed envelopes, then early-abandoning DTW) of
// Keogh's exact-indexing pipeline — the paper's reference [7] and the
// natural companion to sDTW for retrieval workloads. Results are exact
// with respect to the (optionally Sakoe-Chiba-windowed) DTW distance.
type BoundedIndex struct {
	data      []Series
	envelopes []lower.Envelope
	radius    int
	band      dtw.Band // the DP constraint; FullBand when unconstrained
	bandCells int
	length    int
	abandon   bool
}

// NewBoundedIndex builds the index. All series must share one length.
// radius is the Sakoe-Chiba warping window in samples: both the DTW
// computation and the envelopes use the same radius, keeping the bound
// exact for the windowed distance. radius < 0 (or >= length) selects
// unconstrained DTW with full-width envelopes. Early abandonment is on
// by default; SetEarlyAbandon turns it off for A/B verification.
func NewBoundedIndex(data []Series, radius int) (*BoundedIndex, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("sdtw: cannot index an empty collection")
	}
	length := data[0].Len()
	if length == 0 {
		return nil, fmt.Errorf("sdtw: series 0 is empty")
	}
	for i, s := range data {
		if s.Len() != length {
			return nil, fmt.Errorf("sdtw: series %d has length %d, want %d (bounded search needs equal lengths)", i, s.Len(), length)
		}
	}
	if radius < 0 || radius >= length {
		radius = length // unconstrained
	}
	ix := &BoundedIndex{data: data, radius: radius, length: length, abandon: true}
	ix.envelopes = make([]lower.Envelope, len(data))
	for i, s := range data {
		ix.envelopes[i] = lower.NewEnvelope(s.Values, radius)
	}
	if radius < length {
		// The band must sit at exactly the envelope radius: LB_Keogh at
		// radius r does not lower-bound windowed DTW at radius r+1, and
		// deriving the band from a width fraction (whose ceil rounding
		// yields radius r+1) silently drops true nearest neighbours.
		ix.band = dtw.SakoeChibaRadius(length, length, radius)
	} else {
		ix.band = dtw.FullBand(length, length)
	}
	ix.bandCells = ix.band.Cells()
	return ix, nil
}

// Len returns the number of indexed series.
func (ix *BoundedIndex) Len() int { return len(ix.data) }

// Radius returns the effective warping window in samples.
func (ix *BoundedIndex) Radius() int { return ix.radius }

// SetEarlyAbandon toggles early-abandoning DTW inside TopK. Abandonment
// never changes results — only the grid work spent refuting hopeless
// candidates — so the switch exists for verification and measurement.
func (ix *BoundedIndex) SetEarlyAbandon(on bool) { ix.abandon = on }

// TopK returns the k nearest indexed series to the query under the
// (windowed) DTW distance, exactly, using the bound cascade to skip
// candidates. Candidates sharing the query's non-empty ID are excluded,
// so leave-one-out evaluation works naturally. k larger than the
// candidate count returns every candidate.
func (ix *BoundedIndex) TopK(query Series, k int) ([]Neighbor, BoundStats, error) {
	var stats BoundStats
	if k <= 0 {
		return nil, stats, fmt.Errorf("sdtw: TopK needs k >= 1, got %d", k)
	}
	if query.Len() != ix.length {
		return nil, stats, fmt.Errorf("sdtw: query length %d != indexed length %d", query.Len(), ix.length)
	}
	// Candidate order: ascending LB_Kim — O(1) per candidate, so ordering
	// the whole collection is nearly free and strong matches still surface
	// early. The O(n) LB_Keogh is computed lazily, only for candidates
	// that survive the Kim check, keeping the cascade cheapest-first.
	type cand struct {
		pos int
		kim float64
	}
	cands := make([]cand, 0, len(ix.data))
	for i, s := range ix.data {
		if s.ID != "" && s.ID == query.ID {
			continue
		}
		kim, err := lower.Kim(query.Values, s.Values, nil)
		if err != nil {
			return nil, stats, err
		}
		cands = append(cands, cand{pos: i, kim: kim})
	}
	stats.Candidates = len(cands)
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].kim != cands[b].kim {
			return cands[a].kim < cands[b].kim
		}
		return cands[a].pos < cands[b].pos
	})

	best := make([]Neighbor, 0, k)
	kth := math.Inf(1)
	insert := func(nb Neighbor) {
		best = append(best, nb)
		sort.Slice(best, func(a, b int) bool {
			if best[a].Distance != best[b].Distance {
				return best[a].Distance < best[b].Distance
			}
			return best[a].Pos < best[b].Pos
		})
		if len(best) > k {
			best = best[:k]
		}
		if len(best) == k {
			kth = best[k-1].Distance
		}
	}
	var ws dtw.Workspace
	for _, c := range cands {
		if c.kim > kth {
			stats.PrunedKim++
			continue
		}
		kg, err := lower.Keogh(query.Values, ix.envelopes[c.pos], nil)
		if err != nil {
			return nil, stats, err
		}
		if kg > kth {
			stats.PrunedKeogh++
			continue
		}
		budget := math.Inf(1)
		if ix.abandon {
			budget = kth
		}
		d, cells, abandoned, err := dtw.BandedAbandonWS(query.Values, ix.data[c.pos].Values, ix.band, nil, budget, &ws)
		if err != nil {
			return nil, stats, err
		}
		stats.Evaluated++
		if abandoned {
			// The partial cost already exceeds the k-th best distance, so
			// the candidate cannot enter the result set.
			stats.AbandonedDTW++
			stats.CellsSaved += ix.bandCells - cells
			continue
		}
		if d <= kth || len(best) < k {
			insert(Neighbor{Pos: c.pos, Distance: d})
		}
	}
	return best, stats, nil
}
