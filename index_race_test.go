package sdtw

import (
	"context"
	"sync"
	"testing"
)

// TestIndexConcurrentQueries hammers a single Index from many goroutines
// mixing every query entry point. The engine documents itself as safe for
// concurrent use; this proves the claim for the cascaded worker-pool
// search path too. Run it under -race (the CI race lane does).
func TestIndexConcurrentQueries(t *testing.T) {
	d := TraceDataset(DatasetConfig{Seed: 21, SeriesPerClass: 4})
	ix, err := NewIndex(d.Series, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const goroutines = 8
	const rounds = 4

	// One reference result per query to compare the concurrent runs
	// against: concurrency must not change what a query returns.
	want := make([][]Neighbor, len(d.Series))
	for i, q := range d.Series {
		nbrs, _, err := ix.Search(ctx, q, WithK(3))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = nbrs
	}

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				qi := (g + r) % len(d.Series)
				q := d.Series[qi]
				switch (g + r) % 3 {
				case 0:
					nbrs, _, err := ix.Search(ctx, q, WithK(3))
					if err != nil {
						errs <- err
						return
					}
					for j := range nbrs {
						if nbrs[j] != want[qi][j] {
							t.Errorf("goroutine %d: query %d rank %d diverged under concurrency: %+v vs %+v",
								g, qi, j, nbrs[j], want[qi][j])
							return
						}
					}
				case 1:
					if _, err := ix.Labels(ctx, q, WithK(3)); err != nil {
						errs <- err
						return
					}
				case 2:
					if _, _, err := ix.SearchBatch(ctx, d.Series[:4], WithK(2)); err != nil {
						errs <- err
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
