package sdtw_test

import (
	"context"
	"fmt"

	"sdtw"
)

// The one-shot helpers compare a short series against a stretched copy:
// DTW absorbs the temporal deformation the pointwise distance cannot.
func ExampleDTW() {
	x := []float64{0, 1, 2, 1, 0}
	y := []float64{0, 0, 1, 1, 2, 2, 1, 1, 0, 0} // x at half speed
	d, err := sdtw.DTW(x, y)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.1f\n", d)
	// Output: 0.0
}

// DTWPath also recovers the optimal warp path, the alignment itself.
func ExampleDTWPath() {
	x := []float64{0, 1, 0}
	y := []float64{0, 0, 1, 0}
	d, path, err := sdtw.DTWPath(x, y)
	if err != nil {
		panic(err)
	}
	fmt.Printf("distance %.1f, path length %d, starts %v, ends %v\n",
		d, len(path), path[0], path[len(path)-1])
	// Output: distance 0.0, path length 4, starts {0 0}, ends {2 3}
}

// An Engine applies sDTW's locally relevant constraints and reports how
// much of the DTW grid the salient-feature alignment pruned away.
func ExampleEngine() {
	data := sdtw.GunDataset(sdtw.DatasetConfig{Seed: 1, SeriesPerClass: 2})
	eng := sdtw.NewEngine(sdtw.DefaultOptions())
	// Series[0] and Series[1] are two gun-class recordings: structurally
	// alike, temporally deformed.
	res, err := eng.DistanceSeries(data.Series[0], data.Series[1])
	if err != nil {
		panic(err)
	}
	fmt.Printf("pruned part of the grid: %v\n", res.CellsGain() > 0.3)
	// Output: pruned part of the grid: true
}

// Subsequence search finds where a short pattern best matches inside a
// longer stream.
func ExampleSubsequence() {
	pattern := []float64{0, 2, 0}
	stream := []float64{5, 5, 5, 0, 2, 0, 5, 5}
	m, err := sdtw.Subsequence(pattern, stream)
	if err != nil {
		panic(err)
	}
	fmt.Printf("match [%d,%d] distance %.1f\n", m.Start, m.End, m.Distance)
	// Output: match [3,5] distance 0.0
}

// A Monitor watches an unbounded stream for a pattern with O(|pattern|)
// state and O(|pattern|) work per point, reporting each non-overlapping
// occurrence as soon as it is provably final.
func ExampleMonitor() {
	pattern := sdtw.NewSeries("pulse", 0, []float64{0, 2, 0})
	mon, err := sdtw.NewMonitor([]sdtw.Series{pattern}, sdtw.Options{}, sdtw.WithMatchThreshold(0.5))
	if err != nil {
		panic(err)
	}
	ctx := context.Background()
	for _, v := range []float64{5, 5, 0, 2, 0, 5, 5, 0, 2, 0, 5} {
		matches, err := mon.Push(ctx, v)
		if err != nil {
			panic(err)
		}
		for _, m := range matches {
			fmt.Printf("%s at [%d,%d] distance %.1f\n", m.QueryID, m.Start, m.End, m.Distance)
		}
	}
	if _, err := mon.Flush(); err != nil {
		panic(err)
	}
	// Output:
	// pulse at [2,4] distance 0.0
	// pulse at [7,9] distance 0.0
}

// PAA reduces a series by window averaging, the coarsening step of the
// multi-resolution DTW family.
func ExamplePAA() {
	fmt.Println(sdtw.PAA([]float64{1, 3, 5, 7, 9, 11}, 3))
	// Output: [3 9]
}

// Search is the unified query surface: one call serves top-k retrieval,
// range search (WithThreshold) and leave-one-out exclusion on either
// backend, under a cancellable context.
func Example_search() {
	data := []sdtw.Series{
		sdtw.NewSeries("ramp", 0, []float64{0, 1, 2, 3, 4, 5, 6, 7}),
		sdtw.NewSeries("ramp-slow", 0, []float64{0, 0, 1, 1, 2, 3, 5, 7}),
		sdtw.NewSeries("flat", 1, []float64{3, 3, 3, 3, 3, 3, 3, 3}),
	}
	ix, err := sdtw.NewIndex(data, sdtw.Options{Strategy: sdtw.FullGrid})
	if err != nil {
		panic(err)
	}
	query := sdtw.NewSeries("q", 0, []float64{0, 1, 2, 3, 4, 5, 6, 7})
	nbrs, stats, err := ix.Search(context.Background(), query, sdtw.WithK(2))
	if err != nil {
		panic(err)
	}
	fmt.Printf("nearest: %s (distance %.1f)\n", ix.Series(nbrs[0].Pos).ID, nbrs[0].Distance)
	fmt.Printf("examined %d candidates\n", stats.Candidates)
	// Output:
	// nearest: ramp (distance 0.0)
	// examined 3 candidates
}

// Indexes are mutable: Add pays the new series' one-time costs (feature
// extraction, LB_Keogh envelope) incrementally, and the next search sees
// it immediately.
func ExampleIndex_Add() {
	data := []sdtw.Series{
		sdtw.NewSeries("up", 0, []float64{0, 1, 2, 3, 4, 5, 6, 7}),
		sdtw.NewSeries("down", 1, []float64{7, 6, 5, 4, 3, 2, 1, 0}),
	}
	ix, err := sdtw.NewWindowedIndex(data, -1) // exact DTW backend
	if err != nil {
		panic(err)
	}
	if err := ix.Add(sdtw.NewSeries("up-too", 0, []float64{0, 0, 1, 2, 3, 4, 6, 7})); err != nil {
		panic(err)
	}
	query := sdtw.NewSeries("q", 0, []float64{0, 1, 1, 2, 3, 4, 6, 7})
	nbrs, _, err := ix.Search(context.Background(), query, sdtw.WithK(1))
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d series indexed; nearest to the query: %s\n", ix.Len(), ix.Series(nbrs[0].Pos).ID)
	// Output: 3 series indexed; nearest to the query: up-too
}
