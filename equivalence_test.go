package sdtw

import (
	"context"
	"fmt"
	"sort"
	"testing"

	"sdtw/internal/dtw"
)

// legacyEngineTopK reimplements the pre-redesign Index.TopK contract as a
// reference: a scan of the engine's distance to every candidate (skipping
// candidates sharing the query's non-empty ID), ranked ascending with
// ties broken by position, truncated to k. The pre-redesign cascade was
// property-tested bit-identical to exactly this scan, so agreeing with it
// proves the redesigned Search path returns the pre-redesign answers.
func legacyEngineTopK(t *testing.T, ix *Index, query Series, k int) []Neighbor {
	t.Helper()
	var all []Neighbor
	for i := 0; i < ix.Len(); i++ {
		s := ix.Series(i)
		if s.ID != "" && s.ID == query.ID {
			continue
		}
		res, err := ix.Engine().DistanceSeries(query, s)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, Neighbor{Pos: i, Distance: res.Distance})
	}
	return rankTruncate(all, k)
}

// legacyWindowedTopK reimplements the pre-redesign BoundedIndex.TopK
// contract: a scan of the Sakoe-Chiba windowed DTW distance at exactly
// the envelope radius, same ID exclusion, same ranking.
func legacyWindowedTopK(t *testing.T, data []Series, query Series, radius, k int) []Neighbor {
	t.Helper()
	length := len(query.Values)
	var b dtw.Band
	if radius < length {
		b = dtw.SakoeChibaRadius(length, length, radius)
	} else {
		b = dtw.FullBand(length, length)
	}
	var all []Neighbor
	for i, s := range data {
		if s.ID != "" && s.ID == query.ID {
			continue
		}
		d, _, err := dtw.Banded(query.Values, s.Values, b, nil)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, Neighbor{Pos: i, Distance: d})
	}
	return rankTruncate(all, k)
}

func rankTruncate(all []Neighbor, k int) []Neighbor {
	sort.Slice(all, func(a, b int) bool {
		if all[a].Distance != all[b].Distance {
			return all[a].Distance < all[b].Distance
		}
		return all[a].Pos < all[b].Pos
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

// TestSearchEquivalentToPreRedesignEngineTopK is the tentpole acceptance
// property for the engine backend: on the Gun and Trace reproduction
// workloads, across every band strategy, the unified Search returns
// neighbours bit-identical to the pre-redesign TopK contract.
func TestSearchEquivalentToPreRedesignEngineTopK(t *testing.T) {
	datasets := map[string]*Dataset{
		"Gun":   GunDataset(DatasetConfig{Seed: 81, SeriesPerClass: 5}),
		"Trace": TraceDataset(DatasetConfig{Seed: 82, SeriesPerClass: 3}),
	}
	for dsName, d := range datasets {
		for _, opts := range cascadeConfigs() {
			name := fmt.Sprintf("%s/%v", dsName, opts.Strategy)
			if opts.Symmetric {
				name += "+sym"
			}
			if opts.MaxWidthFrac > 0 {
				name += "+maxw"
			}
			if opts.Strategy == FixedCoreFixedWidth {
				name += fmt.Sprintf("+w=%g", opts.WidthFrac)
			}
			if opts.Slope != 0 {
				name += fmt.Sprintf("+slope=%g", opts.Slope)
			}
			opts := opts
			d := d
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				ix, err := NewIndex(d.Series, opts)
				if err != nil {
					t.Fatal(err)
				}
				for _, qi := range []int{0, d.Len() / 2, d.Len() - 1} {
					q := d.Series[qi]
					for _, k := range []int{1, 5, d.Len() + 10} {
						want := legacyEngineTopK(t, ix, q, k)
						got, _, err := ix.Search(context.Background(), q, WithK(k))
						if err != nil {
							t.Fatal(err)
						}
						if len(got) != len(want) {
							t.Fatalf("query %d k=%d: %d neighbours, want %d", qi, k, len(got), len(want))
						}
						for i := range got {
							if got[i] != want[i] {
								t.Fatalf("query %d k=%d rank %d: Search %+v, pre-redesign %+v",
									qi, k, i, got[i], want[i])
							}
						}
					}
				}
			})
		}
	}
}

// TestSearchEquivalentToPreRedesignWindowedTopK is the same acceptance
// property for the windowed backend, across warping radii including the
// unconstrained case.
func TestSearchEquivalentToPreRedesignWindowedTopK(t *testing.T) {
	datasets := map[string]*Dataset{
		"Gun":   GunDataset(DatasetConfig{Seed: 83, SeriesPerClass: 5}),
		"Trace": TraceDataset(DatasetConfig{Seed: 84, SeriesPerClass: 3}),
	}
	for dsName, d := range datasets {
		for _, radius := range []int{-1, 5, 20} {
			name := fmt.Sprintf("%s/radius=%d", dsName, radius)
			d := d
			radius := radius
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				ix, err := NewWindowedIndex(d.Series, radius)
				if err != nil {
					t.Fatal(err)
				}
				for _, qi := range []int{0, d.Len() - 1} {
					q := d.Series[qi]
					for _, k := range []int{1, 5, d.Len() + 10} {
						want := legacyWindowedTopK(t, d.Series, q, ix.Radius(), k)
						got, _, err := ix.Search(context.Background(), q, WithK(k))
						if err != nil {
							t.Fatal(err)
						}
						if len(got) != len(want) {
							t.Fatalf("query %d k=%d: %d neighbours, want %d", qi, k, len(got), len(want))
						}
						for i := range got {
							if got[i] != want[i] {
								t.Fatalf("query %d k=%d rank %d: Search %+v, pre-redesign %+v",
									qi, k, i, got[i], want[i])
							}
						}
					}
				}
			})
		}
	}
}
