package sdtw

import (
	"container/heap"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sdtw/internal/band"
	"sdtw/internal/lower"
)

// Index supports retrieval and k-nearest-neighbour classification over a
// collection of series using a shared sDTW engine. Construction pays the
// paper's one-time indexing cost (§3.4) twice over: salient features of
// every indexed series are extracted and cached, and the LB_Keogh
// upper/lower envelopes of Keogh's exact-indexing pipeline (the paper's
// reference [7]) are precomputed next to them.
//
// Queries run a lower-bound cascade instead of a brute-force scan:
// candidates are ordered by the cheap LB_Kim bound, a best-so-far k-heap
// maintains the pruning threshold, and any candidate whose LB_Kim or
// envelope LB_Keogh bound already exceeds the k-th best distance is
// discarded before any DTW grid work. Surviving candidates are fanned out
// across a bounded worker pool sharing the threshold atomically, and the
// threshold follows them into the dynamic program itself: the banded DP
// early-abandons the moment every continuation exceeds the k-th best
// distance, so even evaluated candidates rarely fill their whole band.
// The cascade is exact: LB_Kim and LB_Keogh (at the envelope radius the
// index derives from the engine's band options) never exceed the banded
// sDTW distance, and an abandoned candidate's partial cost is itself a
// lower bound above the threshold, so TopK returns precisely the
// neighbours a full scan would.
//
// An Index is safe for concurrent use.
type Index struct {
	engine *Engine
	data   []Series
	// envelopes[i] is the LB_Keogh envelope of data[i] at the radius
	// admissible for the engine's band strategy; nil when the cascade is
	// disabled (custom point distance).
	envelopes []lower.Envelope
	// cascade reports whether lower-bound pruning is active. It is off
	// when Options.PointDistance is set: the bounds assume the default
	// squared point cost (non-negative and monotone in the gap), and an
	// arbitrary cost function voids their admissibility proofs.
	cascade bool
	// abandon enables threshold-aware early abandonment inside the DP
	// (stage 3 of the cascade). Like the bounds it assumes a non-negative
	// point cost, so it is tied to cascade and additionally gated by
	// Options.DisableAbandon.
	abandon bool
	workers int
}

// NewIndex builds an index over data using opts. Every series must be
// non-empty; series IDs must be unique when non-empty (they key the
// feature cache).
func NewIndex(data []Series, opts Options) (*Index, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("sdtw: cannot index an empty collection")
	}
	seen := make(map[string]bool, len(data))
	for i, s := range data {
		if len(s.Values) == 0 {
			return nil, fmt.Errorf("sdtw: series %d (%q) is empty", i, s.ID)
		}
		if s.ID != "" {
			if seen[s.ID] {
				return nil, fmt.Errorf("sdtw: duplicate series ID %q", s.ID)
			}
			seen[s.ID] = true
		}
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	idx := &Index{
		engine:  NewEngine(opts),
		data:    data,
		cascade: opts.PointDistance == nil,
		abandon: opts.PointDistance == nil && !opts.DisableAbandon,
		workers: workers,
	}
	if err := idx.engine.Warm(data); err != nil {
		return nil, err
	}
	if idx.cascade {
		bandCfg := opts.toCore().Band
		idx.envelopes = make([]lower.Envelope, len(data))
		for i, s := range data {
			idx.envelopes[i] = lower.NewEnvelope(s.Values, band.EnvelopeRadius(bandCfg, len(s.Values)))
		}
	}
	return idx, nil
}

// Len returns the number of indexed series.
func (ix *Index) Len() int { return len(ix.data) }

// Series returns the indexed series at position i.
func (ix *Index) Series(i int) Series { return ix.data[i] }

// Engine exposes the index's engine for direct distance computations.
func (ix *Index) Engine() *Engine { return ix.engine }

// Neighbor is one retrieval result.
type Neighbor struct {
	// Pos is the position of the neighbour in the indexed collection.
	Pos int
	// Distance is the (constrained) DTW distance to the query.
	Distance float64
}

// QueryStats accounts for the work one query (or a batch of queries) did
// and, more importantly, avoided, mirroring eval.PairStats: how far each
// cascade stage got, how many grid cells were filled, and where the time
// went.
type QueryStats struct {
	// BoundStats counts how far each candidate got through the cascade
	// (the same stage accounting BoundedIndex reports for its windowed
	// retrieval, including PruneRate).
	BoundStats
	// Cells is the number of DTW grid cells actually filled.
	Cells int
	// GridCells is the total N·M over every candidate — the grids a
	// brute-force scan would confront — so CellsGain reflects the combined
	// effect of the cascade and the sDTW band.
	GridCells int
	// BoundTime is the time spent computing LB_Kim and LB_Keogh bounds.
	BoundTime time.Duration
	// MatchTime and DPTime are the summed engine stage durations of the
	// evaluated candidates (paper tasks b and c).
	MatchTime, DPTime time.Duration
	// WallTime is the elapsed time of the whole query.
	WallTime time.Duration
}

// CellsGain is the machine-independent pruning gain 1 − Cells/GridCells.
func (s QueryStats) CellsGain() float64 {
	if s.GridCells == 0 {
		return 0
	}
	return 1 - float64(s.Cells)/float64(s.GridCells)
}

// merge folds another stats record into s (batch aggregation). WallTime
// is deliberately not summed: batches report their own elapsed time.
func (s *QueryStats) merge(o QueryStats) {
	s.Candidates += o.Candidates
	s.PrunedKim += o.PrunedKim
	s.PrunedKeogh += o.PrunedKeogh
	s.Evaluated += o.Evaluated
	s.AbandonedDTW += o.AbandonedDTW
	s.CellsSaved += o.CellsSaved
	s.Cells += o.Cells
	s.GridCells += o.GridCells
	s.BoundTime += o.BoundTime
	s.MatchTime += o.MatchTime
	s.DPTime += o.DPTime
}

// String implements fmt.Stringer for terse logs.
func (s QueryStats) String() string {
	return fmt.Sprintf("candidates=%d kim=%d keogh=%d evaluated=%d abandoned=%d prune=%.2f cellsgain=%.2f cellssaved=%d",
		s.Candidates, s.PrunedKim, s.PrunedKeogh, s.Evaluated, s.AbandonedDTW, s.PruneRate(), s.CellsGain(), s.CellsSaved)
}

// TopK returns the k indexed series nearest to the query under the
// engine's constrained distance, ascending (ties broken by position). k
// larger than the collection is truncated.
func (ix *Index) TopK(query Series, k int) ([]Neighbor, error) {
	nbrs, _, err := ix.TopKStats(query, k)
	return nbrs, err
}

// TopKStats is TopK with the cascade's work accounting.
func (ix *Index) TopKStats(query Series, k int) ([]Neighbor, QueryStats, error) {
	return ix.query(query, k, ix.workers, -1)
}

// candidate is one cascade work item: a collection position and its
// LB_Kim bound.
type candidate struct {
	pos int
	kim float64
}

// bestK is the best-so-far heap: a max-heap on (distance, position) holding
// at most k neighbours, so the root is the current k-th best and the
// pruning threshold.
type bestK []Neighbor

func (h bestK) Len() int { return len(h) }
func (h bestK) Less(a, b int) bool {
	if h[a].Distance != h[b].Distance {
		return h[a].Distance > h[b].Distance
	}
	return h[a].Pos > h[b].Pos
}
func (h bestK) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *bestK) Push(x any)   { *h = append(*h, x.(Neighbor)) }
func (h *bestK) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h bestK) worseThan(nb Neighbor) bool {
	w := h[0]
	return nb.Distance < w.Distance || (nb.Distance == w.Distance && nb.Pos < w.Pos)
}

// parallelFor fans fn out over [0, n) across at most workers goroutines,
// stopping early (best effort) once stop is set. fn must be safe for
// concurrent calls on distinct indices.
func parallelFor(workers, n int, stop *atomic.Bool, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n && !stop.Load(); i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || stop.Load() {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// atomicThreshold shares the k-th best distance across workers. It only
// ever decreases; a stale read yields a looser threshold, which costs a
// bound evaluation but never correctness.
type atomicThreshold struct{ bits atomic.Uint64 }

func (t *atomicThreshold) store(v float64) { t.bits.Store(math.Float64bits(v)) }
func (t *atomicThreshold) load() float64   { return math.Float64frombits(t.bits.Load()) }

// query runs the cascaded top-k search with the given worker count.
// excludePos drops the candidate at that collection position (for
// leave-one-out workloads whose series may lack IDs); -1 excludes none.
func (ix *Index) query(query Series, k int, workers, excludePos int) ([]Neighbor, QueryStats, error) {
	var stats QueryStats
	start := time.Now()
	if k <= 0 {
		return nil, stats, fmt.Errorf("sdtw: TopK needs k >= 1, got %d", k)
	}
	if len(query.Values) == 0 {
		return nil, stats, fmt.Errorf("sdtw: empty query series")
	}

	// Stage 0: LB_Kim for every candidate, cheapest first. O(1) per
	// candidate, so this stays sequential; it also fixes the processing
	// order that lets the k-heap threshold tighten fast.
	boundStart := time.Now()
	cands := make([]candidate, 0, len(ix.data))
	for i, s := range ix.data {
		// Skip self-matches when the query is an indexed series.
		if i == excludePos || (s.ID != "" && s.ID == query.ID) {
			continue
		}
		stats.GridCells += len(query.Values) * len(s.Values)
		c := candidate{pos: i}
		if ix.cascade {
			kim, err := lower.Kim(query.Values, s.Values, nil)
			if err != nil {
				return nil, stats, fmt.Errorf("sdtw: LB_Kim to %q: %w", s.ID, err)
			}
			c.kim = kim
		}
		cands = append(cands, c)
	}
	stats.Candidates = len(cands)
	stats.BoundTime += time.Since(boundStart)
	if ix.cascade {
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].kim != cands[b].kim {
				return cands[a].kim < cands[b].kim
			}
			return cands[a].pos < cands[b].pos
		})
	}
	if k > len(cands) {
		k = len(cands)
	}
	if k == 0 {
		stats.WallTime = time.Since(start)
		return nil, stats, nil
	}

	// Stages 1-3, fanned out: LB_Kim check, LB_Keogh check, full sDTW.
	// Per-candidate accounting uses atomic counters so the fast prune
	// path never touches the heap mutex.
	best := make(bestK, 0, k+1)
	var mu sync.Mutex // guards best and firstErr
	var firstErr error
	var stop atomic.Bool
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		stop.Store(true)
	}
	var threshold atomicThreshold
	threshold.store(math.Inf(1))
	var prunedKim, prunedKeogh, evaluated, abandoned, cells, cellsSaved atomic.Int64
	var boundNS, matchNS, dpNS atomic.Int64
	parallelFor(workers, len(cands), &stop, func(n int) {
		c := cands[n]
		s := ix.data[c.pos]
		if ix.cascade {
			if c.kim > threshold.load() {
				prunedKim.Add(1)
				return
			}
			if env := ix.envelopes[c.pos]; len(env.Upper) == len(query.Values) {
				kgStart := time.Now()
				kg, err := lower.Keogh(query.Values, env, nil)
				boundNS.Add(int64(time.Since(kgStart)))
				if err != nil {
					fail(fmt.Errorf("sdtw: LB_Keogh to %q: %w", s.ID, err))
					return
				}
				if kg > threshold.load() {
					prunedKeogh.Add(1)
					return
				}
			}
		}
		// Stage 3: the dynamic program itself, early-abandoning against
		// the shared threshold. The threshold only ever decreases, so a
		// stale read yields a looser budget — extra rows filled, never a
		// wrong result. Abandonment is strict (> budget), so a candidate
		// tying the k-th distance is always evaluated fully.
		budget := math.Inf(1)
		if ix.abandon {
			budget = threshold.load()
		}
		res, err := ix.engine.DistanceUnderSeries(query, s, budget)
		if err != nil {
			fail(fmt.Errorf("sdtw: distance to %q: %w", s.ID, err))
			return
		}
		evaluated.Add(1)
		cells.Add(int64(res.CellsFilled))
		matchNS.Add(int64(res.MatchTime))
		dpNS.Add(int64(res.DPTime))
		if res.Abandoned {
			// The partial cost already exceeds the k-th best distance (and
			// the threshold can only have tightened since), so the
			// candidate cannot enter the heap.
			abandoned.Add(1)
			cellsSaved.Add(int64(res.BandCells - res.CellsFilled))
			return
		}

		nb := Neighbor{Pos: c.pos, Distance: res.Distance}
		mu.Lock()
		if len(best) < k {
			heap.Push(&best, nb)
		} else if best.worseThan(nb) {
			best[0] = nb
			heap.Fix(&best, 0)
		}
		if len(best) == k {
			threshold.store(best[0].Distance)
		}
		mu.Unlock()
	})
	stats.PrunedKim = int(prunedKim.Load())
	stats.PrunedKeogh = int(prunedKeogh.Load())
	stats.Evaluated = int(evaluated.Load())
	stats.AbandonedDTW = int(abandoned.Load())
	stats.CellsSaved = int(cellsSaved.Load())
	stats.Cells = int(cells.Load())
	stats.BoundTime += time.Duration(boundNS.Load())
	stats.MatchTime = time.Duration(matchNS.Load())
	stats.DPTime = time.Duration(dpNS.Load())
	if firstErr != nil {
		stats.WallTime = time.Since(start)
		return nil, stats, firstErr
	}

	out := []Neighbor(best)
	sort.Slice(out, func(a, b int) bool {
		if out[a].Distance != out[b].Distance {
			return out[a].Distance < out[b].Distance
		}
		return out[a].Pos < out[b].Pos
	})
	stats.WallTime = time.Since(start)
	return out, stats, nil
}

// TopKBatch answers one top-k query per entry of queries, parallelising
// across queries and dividing the remaining worker budget inside each
// query's cascade, so the pool stays bounded at the index's worker
// count. The returned stats aggregate every query; WallTime is the
// batch's elapsed time.
func (ix *Index) TopKBatch(queries []Series, k int) ([][]Neighbor, QueryStats, error) {
	return ix.batch(queries, k, false)
}

// batch fans queries out across the worker pool. With excludeSelf set,
// queries must be the indexed collection itself and query n additionally
// excludes position n — leave-one-out even when series lack the IDs the
// usual self-match skip keys on.
func (ix *Index) batch(queries []Series, k int, excludeSelf bool) ([][]Neighbor, QueryStats, error) {
	var stats QueryStats
	start := time.Now()
	if len(queries) == 0 {
		return nil, stats, fmt.Errorf("sdtw: TopKBatch needs at least one query")
	}
	out := make([][]Neighbor, len(queries))
	// Divide the pool across queries: small batches still use every
	// worker inside each query, large batches parallelise across queries
	// with sequential cascades. Ceiling division may oversubscribe by a
	// few goroutines but never leaves workers idle on mid-size batches.
	perQuery := (ix.workers + len(queries) - 1) / len(queries)
	if perQuery < 1 {
		perQuery = 1
	}
	var mu sync.Mutex // guards stats and firstErr; out slots are disjoint
	var firstErr error
	var stop atomic.Bool
	parallelFor(ix.workers, len(queries), &stop, func(n int) {
		excl := -1
		if excludeSelf {
			excl = n
		}
		nbrs, qs, err := ix.query(queries[n], k, perQuery, excl)
		mu.Lock()
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("query %d (%q): %w", n, queries[n].ID, err)
		}
		out[n] = nbrs
		stats.merge(qs)
		mu.Unlock()
		if err != nil {
			stop.Store(true)
		}
	})
	stats.WallTime = time.Since(start)
	if firstErr != nil {
		return nil, stats, firstErr
	}
	return out, stats, nil
}

// Classify attaches class labels to the query by k-nearest-neighbour
// majority vote. Every label achieving the maximum count among the k
// nearest is returned (ties can attach multiple labels, §4.2), sorted
// ascending.
func (ix *Index) Classify(query Series, k int) ([]int, error) {
	nbrs, err := ix.TopK(query, k)
	if err != nil {
		return nil, err
	}
	return ix.vote(nbrs), nil
}

// ClassifyAll classifies every indexed series against the rest of the
// collection, the paper's whole-dataset classification workload (§4.2).
// Each series is excluded from its own candidate set by position, so
// leave-one-out holds even for collections without series IDs. labels[i]
// is the label set attached to series i.
func (ix *Index) ClassifyAll(k int) ([][]int, QueryStats, error) {
	nbrs, stats, err := ix.batch(ix.data, k, true)
	if err != nil {
		return nil, stats, err
	}
	labels := make([][]int, len(nbrs))
	for i, nb := range nbrs {
		labels[i] = ix.vote(nb)
	}
	return labels, stats, nil
}

// vote derives the majority-vote label set from a neighbour list.
func (ix *Index) vote(nbrs []Neighbor) []int {
	counts := make(map[int]int)
	maxCount := 0
	for _, nb := range nbrs {
		l := ix.data[nb.Pos].Label
		counts[l]++
		if counts[l] > maxCount {
			maxCount = counts[l]
		}
	}
	var labels []int
	for l, c := range counts {
		if c == maxCount {
			labels = append(labels, l)
		}
	}
	sort.Ints(labels)
	return labels
}
