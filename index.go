package sdtw

import (
	"fmt"
	"math"
	"sort"

	"sdtw/internal/eval"
)

// Index supports retrieval and k-nearest-neighbour classification over a
// collection of series using a shared sDTW engine. Salient features of the
// indexed series are extracted once at construction (the paper's §3.4
// one-time cost) and reused by every query.
type Index struct {
	engine *Engine
	data   []Series
}

// NewIndex builds an index over data using opts. Every series must be
// non-empty; series IDs must be unique when non-empty (they key the
// feature cache).
func NewIndex(data []Series, opts Options) (*Index, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("sdtw: cannot index an empty collection")
	}
	seen := make(map[string]bool, len(data))
	for i, s := range data {
		if len(s.Values) == 0 {
			return nil, fmt.Errorf("sdtw: series %d (%q) is empty", i, s.ID)
		}
		if s.ID != "" {
			if seen[s.ID] {
				return nil, fmt.Errorf("sdtw: duplicate series ID %q", s.ID)
			}
			seen[s.ID] = true
		}
	}
	idx := &Index{engine: NewEngine(opts), data: data}
	if err := idx.engine.Warm(data); err != nil {
		return nil, err
	}
	return idx, nil
}

// Len returns the number of indexed series.
func (ix *Index) Len() int { return len(ix.data) }

// Series returns the indexed series at position i.
func (ix *Index) Series(i int) Series { return ix.data[i] }

// Engine exposes the index's engine for direct distance computations.
func (ix *Index) Engine() *Engine { return ix.engine }

// Neighbor is one retrieval result.
type Neighbor struct {
	// Pos is the position of the neighbour in the indexed collection.
	Pos int
	// Distance is the (constrained) DTW distance to the query.
	Distance float64
}

// TopK returns the k indexed series nearest to the query under the
// engine's constrained distance, ascending. k larger than the collection
// is truncated.
func (ix *Index) TopK(query Series, k int) ([]Neighbor, error) {
	if k <= 0 {
		return nil, fmt.Errorf("sdtw: TopK needs k >= 1, got %d", k)
	}
	dists := make([]float64, len(ix.data))
	for i, s := range ix.data {
		// Skip self-matches when the query is an indexed series.
		if s.ID != "" && s.ID == query.ID {
			dists[i] = math.NaN()
			continue
		}
		res, err := ix.engine.DistanceSeries(query, s)
		if err != nil {
			return nil, fmt.Errorf("sdtw: distance to %q: %w", s.ID, err)
		}
		dists[i] = res.Distance
	}
	ranked := eval.Ranking(dists)
	if k > len(ranked) {
		k = len(ranked)
	}
	out := make([]Neighbor, k)
	for i := 0; i < k; i++ {
		out[i] = Neighbor{Pos: ranked[i], Distance: dists[ranked[i]]}
	}
	return out, nil
}

// Classify attaches class labels to the query by k-nearest-neighbour
// majority vote. Every label achieving the maximum count among the k
// nearest is returned (ties can attach multiple labels, §4.2), sorted
// ascending.
func (ix *Index) Classify(query Series, k int) ([]int, error) {
	nbrs, err := ix.TopK(query, k)
	if err != nil {
		return nil, err
	}
	counts := make(map[int]int)
	maxCount := 0
	for _, nb := range nbrs {
		l := ix.data[nb.Pos].Label
		counts[l]++
		if counts[l] > maxCount {
			maxCount = counts[l]
		}
	}
	var labels []int
	for l, c := range counts {
		if c == maxCount {
			labels = append(labels, l)
		}
	}
	sort.Ints(labels)
	return labels, nil
}
