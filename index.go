package sdtw

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"

	"sdtw/internal/retrieve"
	"sdtw/internal/store"
)

// Index supports retrieval and k-nearest-neighbour classification over a
// mutable collection of series through one query surface, backed by a
// pluggable distance family:
//
//   - NewIndex builds it over the sDTW engine (salient-feature banded
//     DTW, the paper's pipeline);
//   - NewWindowedIndex builds it over exact, optionally
//     Sakoe-Chiba-windowed DTW (Keogh's exact-indexing pipeline, the
//     paper's reference [7]).
//
// Both constructors pay the one-time indexing costs up front (salient
// feature extraction for the engine backend; LB_Keogh upper/lower
// envelopes for both) and both serve queries through the same shared
// cascade: candidates ordered by the cheap LB_Kim bound are discarded
// against a best-so-far threshold — first by LB_Kim, then by envelope
// LB_Keogh — before any DTW grid work, and the survivors fan out across a
// bounded worker pool running threshold-aware early-abandoning dynamic
// programs. The cascade is exact: Search returns precisely the neighbours
// a brute-force scan under the same distance would.
//
// An Index is safe for concurrent use. Searches run under a read lock;
// Add and Remove take the write lock, so a mutating index keeps serving
// queries between mutations.
type Index struct {
	core   *retrieve.Core
	engine *Engine // nil for the windowed backend
	radius int     // effective windowed radius; -1 for the engine backend

	// Store-backed state (non-nil store only for indexes opened with
	// OpenIndex / OpenWindowedIndex): mutations write through to the
	// segment store, serialised by storeMu.
	store   *store.Store
	storeMu sync.Mutex
	seqs    map[string]uint64 // insertion sequence by series ID
	nextSeq uint64

	// segRecords is Options.StoreSegmentRecords, kept for SaveStore
	// (zero means the store default).
	segRecords int
}

// Neighbor is one retrieval result.
type Neighbor = retrieve.Neighbor

// SearchStats accounts for the work one search (or batch) did and, more
// importantly, avoided: per-stage prune counts, abandonment and grid-cell
// accounting, and per-stage timings. It is shared by both backends.
type SearchStats = retrieve.Stats

// NewIndex builds an index over data using the sDTW engine configured by
// opts. Every series must be non-empty; series IDs must be unique when
// non-empty (they key the feature cache and Remove). Construction
// extracts and caches the salient features of every series and
// precomputes LB_Keogh envelopes at the radius admissible for the
// engine's band strategy.
func NewIndex(data []Series, opts Options) (*Index, error) {
	engine := NewEngine(opts)
	backend := retrieve.NewEngineBackend(engine.inner, engineFingerprint(opts), opts.PointDistance != nil)
	core, err := retrieve.New(backend, data, indexWorkers(opts.Workers), !opts.DisableAbandon)
	if err != nil {
		return nil, fmt.Errorf("sdtw: %w", err)
	}
	if w := resolveSketchWidth(opts.SketchWidth); w > 0 {
		if err := core.EnableSketches(w); err != nil {
			return nil, fmt.Errorf("sdtw: %w", err)
		}
	}
	return &Index{core: core, engine: engine, radius: -1, segRecords: opts.StoreSegmentRecords}, nil
}

// NewWindowedIndex builds an index answering exact top-k DTW queries over
// an equal-length collection. radius is the Sakoe-Chiba warping window in
// samples: both the DTW computation and the LB_Keogh envelopes use the
// same radius, keeping the cascade exact for the windowed distance.
// radius < 0 (or >= the series length) selects unconstrained DTW with
// full-width envelopes.
//
// Validation is shared with NewIndex — in particular non-empty series IDs
// must be unique (they key Remove), which the pre-unification
// NewBoundedIndex did not require.
func NewWindowedIndex(data []Series, radius int) (*Index, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("sdtw: cannot index: %w", ErrEmptyCollection)
	}
	length := data[0].Len()
	if length == 0 {
		return nil, fmt.Errorf("sdtw: series 0: %w", ErrEmptySeries)
	}
	backend, eff, err := retrieve.NewWindowedBackend(length, radius)
	if err != nil {
		return nil, fmt.Errorf("sdtw: %w", err)
	}
	core, err := retrieve.New(backend, data, indexWorkers(0), true)
	if err != nil {
		return nil, fmt.Errorf("sdtw: %w", err)
	}
	if err := core.EnableSketches(DefaultSketchWidth); err != nil {
		return nil, fmt.Errorf("sdtw: %w", err)
	}
	return &Index{core: core, radius: eff}, nil
}

// indexWorkers resolves a worker-pool width: <= 0 means GOMAXPROCS.
func indexWorkers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// engineFingerprint deterministically encodes every engine option that
// affects distances or cascade geometry, so persisted indexes refuse to
// load under options that would change their answers. A custom
// PointDistance is recorded by presence only — functions cannot be
// serialised — so callers persisting such indexes must supply the same
// function on load.
func engineFingerprint(o Options) string {
	var b strings.Builder
	b.WriteString("sdtw/v1")
	f := func(k string, v any) { fmt.Fprintf(&b, "|%s=%v", k, v) }
	f("strategy", int(o.Strategy))
	f("w", strconv.FormatFloat(o.WidthFrac, 'g', -1, 64))
	f("minw", strconv.FormatFloat(o.MinWidthFrac, 'g', -1, 64))
	f("maxw", strconv.FormatFloat(o.MaxWidthFrac, 'g', -1, 64))
	f("nr", o.NeighborRadius)
	f("slope", strconv.FormatFloat(o.Slope, 'g', -1, 64))
	f("sym", o.Symmetric)
	f("bins", o.DescriptorBins)
	f("eps", strconv.FormatFloat(o.Epsilon, 'g', -1, 64))
	f("oct", o.Octaves)
	f("lev", o.Levels)
	f("amp", strconv.FormatFloat(o.MaxAmplitudeDiff, 'g', -1, 64))
	f("scale", strconv.FormatFloat(o.MaxScaleRatio, 'g', -1, 64))
	f("dom", strconv.FormatFloat(o.DominanceRatio, 'g', -1, 64))
	f("pd", o.PointDistance != nil)
	return b.String()
}

// Len returns the number of indexed series.
func (ix *Index) Len() int { return ix.core.Len() }

// Series returns the indexed series at position i. Positions are
// renumbered by Add and Remove; a position is only meaningful against the
// collection state it was observed under.
func (ix *Index) Series(i int) Series { return ix.core.Series(i) }

// Engine exposes the index's engine for direct distance computations. It
// is nil for windowed indexes, which have no salient-feature pipeline.
func (ix *Index) Engine() *Engine { return ix.engine }

// Radius returns the effective Sakoe-Chiba warping window in samples for
// windowed indexes, and -1 for engine-backed indexes.
func (ix *Index) Radius() int { return ix.radius }

// Add appends a series to the collection, incrementally paying its
// one-time costs (feature extraction on the engine backend, LB_Keogh
// envelope on both) under the index's write lock. The series must be
// non-empty, its non-empty ID unique, and — on windowed indexes — its
// length equal to the indexed length.
func (ix *Index) Add(s Series) error {
	if ix.store != nil {
		return ix.addStore(s)
	}
	if err := ix.core.Add(s); err != nil {
		return fmt.Errorf("sdtw: Add: %w", err)
	}
	return nil
}

// Remove deletes the series with the given non-empty ID, dropping its
// envelope and cached features. Later series shift down one position.
// Removing the last series fails: an index is never empty.
func (ix *Index) Remove(id string) error {
	if ix.store != nil {
		return ix.removeStore(id)
	}
	if err := ix.core.Remove(id); err != nil {
		return fmt.Errorf("sdtw: Remove: %w", err)
	}
	return nil
}

// searchConfig is the resolved form of a SearchOption list.
type searchConfig struct {
	k            int
	kSet         bool
	workers      int
	exclude      int
	threshold    float64
	thresholdSet bool
	noAbandon    bool
	noSketch     bool
}

// SearchOption configures one Search, SearchBatch, Labels or LabelsAll
// call.
type SearchOption func(*searchConfig)

// WithK requests the k nearest neighbours (k >= 1; Search reports ErrBadK
// otherwise). k larger than the candidate count is truncated. Without
// WithK a search returns the single nearest neighbour — unless
// WithThreshold is given, in which case it returns every neighbour within
// the threshold.
func WithK(k int) SearchOption {
	return func(c *searchConfig) { c.k, c.kSet = k, true }
}

// WithWorkers overrides the index's worker-pool width for this search.
// n <= 0 leaves the index default; 1 forces a sequential cascade.
func WithWorkers(n int) SearchOption {
	return func(c *searchConfig) { c.workers = n }
}

// WithExclude drops the candidate at the given collection position, for
// leave-one-out workloads whose series may lack IDs. (Candidates sharing
// the query's non-empty ID are always excluded.)
func WithExclude(pos int) SearchOption {
	return func(c *searchConfig) { c.exclude = pos }
}

// WithThreshold restricts results to neighbours at distance <= d and
// seeds the cascade's pruning threshold with it, so hopeless candidates
// are discarded even before the best-so-far heap fills. Combined with
// WithK it returns the k nearest within d; alone it returns every
// neighbour within d.
func WithThreshold(d float64) SearchOption {
	return func(c *searchConfig) { c.threshold, c.thresholdSet = d, true }
}

// WithoutAbandon disables threshold-aware early abandonment inside the
// dynamic program for this search. Abandonment never changes results —
// only the grid work spent refuting hopeless candidates — so the switch
// exists for A/B verification and measurement.
func WithoutAbandon() SearchOption {
	return func(c *searchConfig) { c.noAbandon = true }
}

// WithoutSketch disables the stage-0 LB_PAA sketch filter for this
// search, leaving LB_Kim as the first cascade stage. Like abandonment,
// the sketch stage never changes results — only which stage discards a
// hopeless candidate — so the switch exists for A/B verification and
// measurement.
func WithoutSketch() SearchOption {
	return func(c *searchConfig) { c.noSketch = true }
}

// resolve validates and lowers a SearchOption list onto retrieve.Params.
func resolveSearch(opts []SearchOption) (retrieve.Params, error) {
	cfg := searchConfig{exclude: -1, threshold: math.Inf(1)}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.kSet && cfg.k <= 0 {
		return retrieve.DefaultParams(), fmt.Errorf("sdtw: %w: got %d", ErrBadK, cfg.k)
	}
	if cfg.thresholdSet && math.IsNaN(cfg.threshold) {
		return retrieve.DefaultParams(), fmt.Errorf("sdtw: WithThreshold needs a number, got NaN")
	}
	k := cfg.k
	if !cfg.kSet {
		if cfg.thresholdSet {
			k = 0 // every neighbour within the threshold
		} else {
			k = 1
		}
	}
	// Start from DefaultParams so the zero-value traps (Exclude: 0,
	// Threshold: 0) cannot resurface if fields are added.
	p := retrieve.DefaultParams()
	p.K = k
	p.Workers = cfg.workers
	p.Exclude = cfg.exclude
	p.Threshold = cfg.threshold
	p.ThresholdSet = cfg.thresholdSet
	p.NoAbandon = cfg.noAbandon
	p.NoSketch = cfg.noSketch
	return p, nil
}

// Search returns the query's nearest indexed series under the index's
// distance, ascending (ties broken by position), through the exact
// lower-bound cascade. Options select the neighbour count (WithK), a
// distance cutoff (WithThreshold), leave-one-out exclusion (WithExclude)
// and per-call tuning (WithWorkers, WithoutAbandon).
//
// ctx cancellation stops the search promptly — the worker pool stops
// dispatching and the dynamic programs stop mid-band — and Search returns
// ctx.Err(), so errors.Is(err, context.Canceled) holds. (With
// Options.ComputePath set the path-recovering DP runs each candidate's
// band to completion; cancellation is then observed between candidates.)
// Validation is uniform across backends: an empty query reports
// ErrEmptySeries, a bad k ErrBadK, and a wrong-length query on a windowed
// index ErrLengthMismatch.
func (ix *Index) Search(ctx context.Context, query Series, opts ...SearchOption) ([]Neighbor, SearchStats, error) {
	p, err := resolveSearch(opts)
	if err != nil {
		return nil, SearchStats{}, err
	}
	nbrs, stats, err := ix.core.Search(ctx, query, p)
	if err != nil {
		return nil, stats, fmt.Errorf("sdtw: %w", err)
	}
	return nbrs, stats, nil
}

// SearchBatch answers one search per entry of queries, parallelising
// across queries while keeping the total worker pool bounded. The
// returned stats aggregate every query; WallTime is the batch's elapsed
// time. The whole batch sees one consistent collection state.
func (ix *Index) SearchBatch(ctx context.Context, queries []Series, opts ...SearchOption) ([][]Neighbor, SearchStats, error) {
	p, err := resolveSearch(opts)
	if err != nil {
		return nil, SearchStats{}, err
	}
	out, stats, err := ix.core.SearchBatch(ctx, queries, p, false)
	if err != nil {
		return nil, stats, fmt.Errorf("sdtw: %w", err)
	}
	return out, stats, nil
}

// Labels attaches class labels to the query by k-nearest-neighbour
// majority vote over a Search with the same options. Every label
// achieving the maximum count among the neighbours is returned (ties can
// attach multiple labels, §4.2), sorted ascending.
func (ix *Index) Labels(ctx context.Context, query Series, opts ...SearchOption) ([]int, error) {
	p, err := resolveSearch(opts)
	if err != nil {
		return nil, err
	}
	// Neighbour labels are resolved inside the search's read lock, so a
	// concurrent Remove cannot renumber positions under the vote.
	_, nbLabels, _, err := ix.core.SearchWithLabels(ctx, query, p)
	if err != nil {
		return nil, fmt.Errorf("sdtw: %w", err)
	}
	return vote(nbLabels), nil
}

// LabelsAll classifies every indexed series against the rest of the
// collection — the paper's whole-dataset leave-one-out workload (§4.2).
// Each series is excluded from its own candidate set by position, so
// leave-one-out holds even for collections without series IDs. labels[i]
// is the label set attached to series i.
func (ix *Index) LabelsAll(ctx context.Context, opts ...SearchOption) ([][]int, SearchStats, error) {
	p, err := resolveSearch(opts)
	if err != nil {
		return nil, SearchStats{}, err
	}
	_, nbLabels, stats, err := ix.core.SearchAllWithLabels(ctx, p)
	if err != nil {
		return nil, stats, fmt.Errorf("sdtw: %w", err)
	}
	labels := make([][]int, len(nbLabels))
	for i, ls := range nbLabels {
		labels[i] = vote(ls)
	}
	return labels, stats, nil
}

// vote derives the majority-vote label set from the neighbours' labels.
func vote(nbLabels []int) []int {
	counts := make(map[int]int)
	maxCount := 0
	for _, l := range nbLabels {
		counts[l]++
		if counts[l] > maxCount {
			maxCount = counts[l]
		}
	}
	var labels []int
	for l, c := range counts {
		if c == maxCount {
			labels = append(labels, l)
		}
	}
	sort.Ints(labels)
	return labels
}
