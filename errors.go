package sdtw

import (
	"errors"

	"sdtw/internal/hub"
	"sdtw/internal/retrieve"
	"sdtw/internal/store"
)

// Sentinel errors of the query surface. Every validation failure across
// NewIndex, NewWindowedIndex, Search, NewMonitor, Push, Add, Remove,
// Cluster and the one-shot helpers wraps one of these, so callers branch
// with errors.Is instead of matching message strings:
//
//	if _, _, err := ix.Search(ctx, q, sdtw.WithK(k)); errors.Is(err, sdtw.ErrBadK) { ... }
var (
	// ErrEmptyCollection reports an attempt to index, cluster, or batch
	// over zero series — or to Remove an index's last series.
	ErrEmptyCollection = retrieve.ErrEmptyCollection
	// ErrEmptySeries reports a series or query with no observations.
	ErrEmptySeries = retrieve.ErrEmptySeries
	// ErrBadK reports a non-positive neighbour count.
	ErrBadK = retrieve.ErrBadK
	// ErrLengthMismatch reports a series or query whose length violates
	// the windowed backend's equal-length requirement.
	ErrLengthMismatch = retrieve.ErrLengthMismatch
	// ErrConfigMismatch reports an index snapshot whose configuration
	// fingerprint does not match the options it is being loaded under.
	ErrConfigMismatch = retrieve.ErrConfigMismatch
	// ErrDuplicateID reports two collection series sharing one non-empty
	// ID (IDs key the feature cache and Remove).
	ErrDuplicateID = retrieve.ErrDuplicateID
	// ErrUnknownID reports a Remove of an ID not in the collection.
	ErrUnknownID = retrieve.ErrUnknownID
	// ErrMonitorClosed reports a Push, PushBatch or Flush on a Monitor
	// that was already flushed — or whose state was abandoned after a
	// mid-batch cancellation.
	ErrMonitorClosed = errors.New("monitor closed")
	// ErrHubClosed reports an operation on a Hub already shut down by
	// Flush (or abandoned after a cancelled Run).
	ErrHubClosed = hub.ErrHubClosed
	// ErrUnknownStream reports a Hub push to (or close of) a stream ID
	// that was never added or was already closed.
	ErrUnknownStream = hub.ErrUnknownStream
	// ErrHubBackpressure reports a Hub push that would overflow the
	// stream's bounded pending buffer; the push consumes nothing and the
	// producer decides whether to retry, shed, or block.
	ErrHubBackpressure = hub.ErrHubBackpressure
	// ErrCorruptManifest reports a segment store whose manifest (or
	// tombstone log) cannot be parsed.
	ErrCorruptManifest = store.ErrCorruptManifest
	// ErrCorruptSegment reports a segment file failing its checksum,
	// header, or framing checks.
	ErrCorruptSegment = store.ErrCorruptSegment
	// ErrTornTail reports a partially written (torn) tail on an
	// append-only store file — the residue of a crash mid-write. Opens
	// repair it by truncating back to the last intact record; Verify
	// reports it without touching anything.
	ErrTornTail = store.ErrTornTail
	// ErrQuarantined reports a store carrying quarantined segments:
	// opening one requires AllowQuarantine (the caller must opt into
	// degraded serving), and Compact refuses until the quarantine is
	// resolved.
	ErrQuarantined = store.ErrQuarantined
	// ErrStoreExists reports a SaveStore (or migration) into a directory
	// that already holds a segment store.
	ErrStoreExists = store.ErrStoreExists
	// ErrNotStoreBacked reports Compact, StoreStats or CloseStore on an
	// index that was not opened from a segment store.
	ErrNotStoreBacked = errors.New("index is not store-backed")
	// ErrStoreBacked reports a gob Save of a store-backed index, whose
	// raw values live in its segment store (keep serving from the store,
	// or rebuild an in-RAM index from the data).
	ErrStoreBacked = errors.New("index is store-backed")
)
