package sdtw

import (
	"errors"
	"math"
	"testing"
)

// TestResolveSearchErrorParamsSafe pins the paramlit fix: even on error
// paths resolveSearch must hand back constructor-built params (Exclude
// -1, +Inf threshold), never a zero-value retrieve.Params whose zero
// Threshold would prune every candidate if a caller ignored the error.
func TestResolveSearchErrorParamsSafe(t *testing.T) {
	p, err := resolveSearch([]SearchOption{WithK(-1)})
	if !errors.Is(err, ErrBadK) {
		t.Fatalf("WithK(-1): got err %v, want ErrBadK", err)
	}
	if p.Exclude != -1 || !math.IsInf(p.Threshold, 1) {
		t.Fatalf("WithK(-1) error-path params %+v are not the safe defaults", p)
	}

	p, err = resolveSearch([]SearchOption{WithThreshold(math.NaN())})
	if err == nil {
		t.Fatal("WithThreshold(NaN) must error")
	}
	if p.Exclude != -1 || !math.IsInf(p.Threshold, 1) {
		t.Fatalf("WithThreshold(NaN) error-path params %+v are not the safe defaults", p)
	}
}
