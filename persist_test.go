package sdtw

import (
	"bytes"
	"context"
	"testing"
)

func TestSaveLoadFeaturesRoundTrip(t *testing.T) {
	d := GunDataset(DatasetConfig{Seed: 61, SeriesPerClass: 3})
	warm := NewEngine(DefaultOptions())
	if err := warm.Warm(d.Series); err != nil {
		t.Fatal(err)
	}
	want, err := warm.DistanceSeries(d.Series[0], d.Series[1])
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := warm.SaveFeatures(&buf); err != nil {
		t.Fatal(err)
	}

	fresh := NewEngine(DefaultOptions())
	if err := fresh.LoadFeatures(&buf); err != nil {
		t.Fatal(err)
	}
	res, err := fresh.DistanceSeries(d.Series[0], d.Series[1])
	if err != nil {
		t.Fatal(err)
	}
	if res.Distance != want.Distance {
		t.Fatalf("restored cache changed distance: %v vs %v", res.Distance, want.Distance)
	}
	// The restored cache must actually serve extraction: per-call
	// extraction time collapses to (near) zero.
	if res.ExtractTime.Milliseconds() > 10 {
		t.Fatalf("restored cache missed: extract time %v", res.ExtractTime)
	}
	feats, err := fresh.Features(d.Series[0])
	if err != nil {
		t.Fatal(err)
	}
	wantFeats, err := warm.Features(d.Series[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(feats) != len(wantFeats) {
		t.Fatalf("restored %d features, want %d", len(feats), len(wantFeats))
	}
}

// TestIndexSaveLoadRoundTrip: a persisted engine-backed index restores
// without re-extracting anything and answers bit-identically, and keeps
// its mutability (Add after load works).
func TestIndexSaveLoadRoundTrip(t *testing.T) {
	d := TraceDataset(DatasetConfig{Seed: 63, SeriesPerClass: 4})
	opts := DefaultOptions()
	ix, err := NewIndex(d.Series[:d.Len()-1], opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	q := d.Series[0]
	want, _, err := ix.Search(ctx, q, WithK(5))
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadIndex(bytes.NewReader(buf.Bytes()), opts)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != ix.Len() {
		t.Fatalf("restored %d series, want %d", back.Len(), ix.Len())
	}
	got, _, err := back.Search(ctx, q, WithK(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank %d: restored %+v, original %+v", i, got[i], want[i])
		}
	}
	// The restored feature cache must actually serve extraction.
	res, err := back.Engine().DistanceSeries(d.Series[0], d.Series[1])
	if err != nil {
		t.Fatal(err)
	}
	if res.ExtractTime.Milliseconds() > 10 {
		t.Fatalf("restored cache missed: extract time %v", res.ExtractTime)
	}
	// The restored index stays mutable.
	if err := back.Add(d.Series[d.Len()-1]); err != nil {
		t.Fatal(err)
	}
	if back.Len() != ix.Len()+1 {
		t.Fatalf("post-load Add did not grow the index: %d", back.Len())
	}
}

// TestLoadIndexRefusesMismatchedOptions: a snapshot written under one
// engine configuration must not load under another — the persisted
// features and envelopes would silently produce wrong distances.
func TestLoadIndexRefusesMismatchedOptions(t *testing.T) {
	d := GunDataset(DatasetConfig{Seed: 64, SeriesPerClass: 2})
	ix, err := NewIndex(d.Series, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	mismatches := []Options{
		{Strategy: FixedCoreFixedWidth, WidthFrac: 0.10},
		{Strategy: AdaptiveCoreAdaptiveWidth, Symmetric: true},
		{Strategy: AdaptiveCoreAdaptiveWidth, DescriptorBins: 8},
	}
	for _, opts := range mismatches {
		if _, err := LoadIndex(bytes.NewReader(buf.Bytes()), opts); !IsErr(err, ErrConfigMismatch) {
			t.Fatalf("options %+v: got %v, want ErrConfigMismatch", opts, err)
		}
	}
	// The windowed loader refuses engine snapshots outright.
	if _, err := LoadWindowedIndex(bytes.NewReader(buf.Bytes())); !IsErr(err, ErrConfigMismatch) {
		t.Fatalf("LoadWindowedIndex on engine snapshot: got %v, want ErrConfigMismatch", err)
	}
}

// TestWindowedIndexSaveLoadRoundTrip: the windowed config travels inside
// the snapshot, so loading needs no options and refuses LoadIndex.
func TestWindowedIndexSaveLoadRoundTrip(t *testing.T) {
	d := TraceDataset(DatasetConfig{Seed: 65, SeriesPerClass: 3})
	ix, err := NewWindowedIndex(d.Series, 15)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	want, _, err := ix.Search(ctx, d.Series[0], WithK(4))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadIndex(bytes.NewReader(buf.Bytes()), DefaultOptions()); !IsErr(err, ErrConfigMismatch) {
		t.Fatalf("LoadIndex on windowed snapshot: got %v, want ErrConfigMismatch", err)
	}
	back, err := LoadWindowedIndex(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Radius() != ix.Radius() {
		t.Fatalf("restored radius %d, want %d", back.Radius(), ix.Radius())
	}
	got, _, err := back.Search(ctx, d.Series[0], WithK(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank %d: restored %+v, original %+v", i, got[i], want[i])
		}
	}
}

func TestLoadIndexRejectsGarbage(t *testing.T) {
	if _, err := LoadIndex(bytes.NewReader([]byte("not a gob stream")), DefaultOptions()); err == nil {
		t.Fatal("garbage index snapshot accepted")
	}
	if _, err := LoadWindowedIndex(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("garbage windowed snapshot accepted")
	}
}

func TestLoadFeaturesRejectsGarbage(t *testing.T) {
	eng := NewEngine(DefaultOptions())
	if err := eng.LoadFeatures(bytes.NewReader([]byte("not a gob stream"))); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
}

func TestSubsequencePublicAPI(t *testing.T) {
	q := []float64{0, 1, 0}
	s := []float64{9, 9, 0, 1, 0, 9, 9}
	m, err := Subsequence(q, s)
	if err != nil {
		t.Fatal(err)
	}
	if m.Distance != 0 || m.Start != 2 || m.End != 4 {
		t.Fatalf("match = %+v, want [2,4] at 0", m)
	}
	if _, err := Subsequence(nil, s); err == nil {
		t.Fatal("empty query accepted")
	}
}
