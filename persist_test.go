package sdtw

import (
	"bytes"
	"testing"
)

func TestSaveLoadFeaturesRoundTrip(t *testing.T) {
	d := GunDataset(DatasetConfig{Seed: 61, SeriesPerClass: 3})
	warm := NewEngine(DefaultOptions())
	if err := warm.Warm(d.Series); err != nil {
		t.Fatal(err)
	}
	want, err := warm.DistanceSeries(d.Series[0], d.Series[1])
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := warm.SaveFeatures(&buf); err != nil {
		t.Fatal(err)
	}

	fresh := NewEngine(DefaultOptions())
	if err := fresh.LoadFeatures(&buf); err != nil {
		t.Fatal(err)
	}
	res, err := fresh.DistanceSeries(d.Series[0], d.Series[1])
	if err != nil {
		t.Fatal(err)
	}
	if res.Distance != want.Distance {
		t.Fatalf("restored cache changed distance: %v vs %v", res.Distance, want.Distance)
	}
	// The restored cache must actually serve extraction: per-call
	// extraction time collapses to (near) zero.
	if res.ExtractTime.Milliseconds() > 10 {
		t.Fatalf("restored cache missed: extract time %v", res.ExtractTime)
	}
	feats, err := fresh.Features(d.Series[0])
	if err != nil {
		t.Fatal(err)
	}
	wantFeats, err := warm.Features(d.Series[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(feats) != len(wantFeats) {
		t.Fatalf("restored %d features, want %d", len(feats), len(wantFeats))
	}
}

func TestLoadFeaturesRejectsGarbage(t *testing.T) {
	eng := NewEngine(DefaultOptions())
	if err := eng.LoadFeatures(bytes.NewReader([]byte("not a gob stream"))); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
}

func TestSubsequencePublicAPI(t *testing.T) {
	q := []float64{0, 1, 0}
	s := []float64{9, 9, 0, 1, 0, 9, 9}
	m, err := Subsequence(q, s)
	if err != nil {
		t.Fatal(err)
	}
	if m.Distance != 0 || m.Start != 2 || m.End != 4 {
		t.Fatalf("match = %+v, want [2,4] at 0", m)
	}
	if _, err := Subsequence(nil, s); err == nil {
		t.Fatal("empty query accepted")
	}
}
