module sdtw

go 1.24
