package sdtw

import (
	"fmt"

	"sdtw/internal/band"
	"sdtw/internal/core"
	"sdtw/internal/match"
	"sdtw/internal/reduced"
	"sdtw/internal/series"
)

// FastDTWResult carries a multi-resolution DTW approximation: the
// distance, the full-resolution warp path, and the total cells evaluated
// across all resolution levels.
type FastDTWResult struct {
	Distance float64
	Path     Path
	// Cells is the total grid work across all levels; compare against
	// len(x)*len(y) for the effective pruning.
	Cells int
	// Levels is the number of resolution levels visited.
	Levels int
}

// FastDTW computes an approximate DTW distance with the multi-resolution
// algorithm of Salvador & Chan (coarsen by PAA, solve, project the path,
// refine within radius). It is the reduced-representation speed-up family
// the paper discusses as orthogonal to sDTW (§2.1.4). radius < 0 selects
// the customary default of 1; larger radii are slower and more accurate.
func FastDTW(x, y []float64, radius int) (FastDTWResult, error) {
	res, err := reduced.FastDTW(x, y, radius, nil)
	if err != nil {
		return FastDTWResult{}, err
	}
	return FastDTWResult{Distance: res.Distance, Path: res.Path, Cells: res.Cells, Levels: res.Levels}, nil
}

// CombinedResult reports a distance computed under the intersection of
// the multi-resolution projected band and the sDTW salient-feature band.
type CombinedResult struct {
	Distance float64
	// Cells is total grid work including the coarse levels.
	Cells int
	// BandCells is the size of the final intersected band.
	BandCells int
	// Pairs is the number of consistent salient pairs that informed the
	// sDTW side of the constraint.
	Pairs int
}

// CombinedDistance realises the combination the paper sketches in
// §1.1/§2: sDTW's locally relevant constraints intersected with a
// FastDTW-style multi-resolution projection, so the refinement works only
// where *both* techniques agree the warp path can be. opts selects the
// sDTW strategy (adaptive strategies recommended); radius is the
// multi-resolution refinement radius (< 0 means 1).
func CombinedDistance(x, y []float64, radius int, opts Options) (CombinedResult, error) {
	if len(x) == 0 || len(y) == 0 {
		return CombinedResult{}, fmt.Errorf("sdtw: empty input (len(x)=%d len(y)=%d): %w", len(x), len(y), ErrEmptySeries)
	}
	copts := opts.toCore()
	eng := core.NewEngine(copts)
	sx := series.Series{Values: x}
	sy := series.Series{Values: y}

	var al *match.Alignment
	if copts.Band.Strategy.AdaptiveCore() || copts.Band.Strategy.AdaptiveWidth() {
		fx, err := eng.Features(sx)
		if err != nil {
			return CombinedResult{}, err
		}
		fy, err := eng.Features(sy)
		if err != nil {
			return CombinedResult{}, err
		}
		al, err = match.Match(fx, fy, len(x), len(y), copts.Matcher)
		if err != nil {
			return CombinedResult{}, err
		}
	} else {
		al = &match.Alignment{NX: len(x), NY: len(y)}
	}
	sdtwBand, err := band.Build(al, copts.Band)
	if err != nil {
		return CombinedResult{}, err
	}
	res, err := reduced.Combined(x, y, radius, sdtwBand, copts.PointDistance)
	if err != nil {
		return CombinedResult{}, err
	}
	return CombinedResult{
		Distance:  res.Distance,
		Cells:     res.Cells,
		BandCells: res.BandCells,
		Pairs:     len(al.Pairs),
	}, nil
}

// PAA reduces a series to ceil(len(v)/factor) samples by piecewise
// aggregate approximation — window means — the reduction underlying
// FastDTW's coarse levels.
func PAA(v []float64, factor int) []float64 { return reduced.PAA(v, factor) }
