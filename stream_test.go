package sdtw

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"sdtw/internal/dtw"
)

// streamWorkload concatenates dataset series into one long stream.
func streamWorkload(tb testing.TB, name string, seriesPerClass, points int) (query, stream []float64) {
	tb.Helper()
	d, err := DatasetByName(name, DatasetConfig{Seed: 17, SeriesPerClass: seriesPerClass})
	if err != nil {
		tb.Fatal(err)
	}
	query = d.Series[0].Values
	for i := 1; len(stream) < points; i = i%(d.Len()-1) + 1 {
		stream = append(stream, d.Series[i].Values...)
	}
	return query, stream[:points]
}

// TestMonitorMatchesOfflineSubsequence is the streaming-equivalence
// property: a Monitor fed point-by-point over Gun and Trace material must
// report, at Flush, the same best match (start, end, distance) as the
// offline Subsequence dynamic program — bit-identical, not within-epsilon.
func TestMonitorMatchesOfflineSubsequence(t *testing.T) {
	for _, name := range []string{"Gun", "Trace"} {
		query, stream := streamWorkload(t, name, 4, 1200)
		want, err := dtw.Subsequence(query, stream, nil)
		if err != nil {
			t.Fatal(err)
		}
		m, err := NewMonitor([]Series{NewSeries("q", 0, query)}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		for _, v := range stream {
			if matches, err := m.Push(ctx, v); err != nil {
				t.Fatal(err)
			} else if len(matches) != 0 {
				t.Fatalf("%s: best-only monitor emitted mid-stream: %+v", name, matches)
			}
		}
		matches, err := m.Flush()
		if err != nil {
			t.Fatal(err)
		}
		if len(matches) != 1 {
			t.Fatalf("%s: Flush returned %d matches, want 1", name, len(matches))
		}
		got := matches[0]
		if got.Start != want.Start || got.End != want.End || got.Distance != want.Distance {
			t.Fatalf("%s: Monitor [%d,%d] %v, offline [%d,%d] %v",
				name, got.Start, got.End, got.Distance, want.Start, want.End, want.Distance)
		}
		if got.Query != 0 || got.QueryID != "q" {
			t.Fatalf("%s: match identity %+v", name, got)
		}
		st := m.Stats()
		if st.Points != int64(len(stream)) || st.Cells != int64(len(stream)*len(query)) {
			t.Fatalf("%s: stats points=%d cells=%d, want %d and %d",
				name, st.Points, st.Cells, len(stream), len(stream)*len(query))
		}
	}
}

// TestMonitorAcceptance10k is the acceptance workload verbatim: a
// 10k-point stream against a 150-point query, pushed in mixed batch
// sizes, must match the offline result bit for bit.
func TestMonitorAcceptance10k(t *testing.T) {
	query, stream := streamWorkload(t, "Gun", 40, 10_000)
	if len(query) != 150 {
		t.Fatalf("Gun query length %d, want 150", len(query))
	}
	want, err := dtw.Subsequence(query, stream, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMonitor([]Series{NewSeries("gun-0", 0, query)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for off, chunk := 0, 1; off < len(stream); chunk = chunk*2 + 1 {
		end := off + chunk // exercise many batch sizes, including 1
		if end > len(stream) {
			end = len(stream)
		}
		if _, err := m.PushBatch(ctx, stream[off:end]); err != nil {
			t.Fatal(err)
		}
		off = end
	}
	matches, err := m.Flush()
	if err != nil || len(matches) != 1 {
		t.Fatalf("Flush = %v, %v", matches, err)
	}
	got := matches[0]
	if got.Start != want.Start || got.End != want.End || got.Distance != want.Distance {
		t.Fatalf("Monitor [%d,%d] %v, offline [%d,%d] %v",
			got.Start, got.End, got.Distance, want.Start, want.End, want.Distance)
	}
}

// TestSubsequenceWrapperBitIdentical pins the compatibility contract: the
// deprecated one-shot Subsequence, now a thin wrapper over the Monitor,
// answers bit-identically to the offline dynamic program it replaced.
func TestSubsequenceWrapperBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(20)
		m := n + rng.Intn(200)
		q := make([]float64, n)
		s := make([]float64, m)
		for i := range q {
			q[i] = rng.NormFloat64()
		}
		for j := range s {
			s[j] = rng.NormFloat64()
		}
		got, err := Subsequence(q, s)
		if err != nil {
			t.Fatal(err)
		}
		want, err := dtw.Subsequence(q, s, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: wrapper %+v, offline %+v", trial, got, want)
		}
	}
	// A NaN-poisoned query never compares below +Inf, so no best match
	// exists; the wrapper must report the historical shape (position 0,
	// NaN cost), not panic.
	m, err := Subsequence([]float64{1, math.NaN()}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if m.Start != 0 || m.End != 0 || !math.IsNaN(m.Distance) {
		t.Fatalf("NaN query: got %+v, want [0,0] at NaN", m)
	}
}

// TestEngineSubsequence checks the pooled-workspace engine path returns
// the same answer as the one-shot helper, across repeated mixed-size
// calls that exercise workspace reuse.
func TestEngineSubsequence(t *testing.T) {
	eng := NewEngine(DefaultOptions())
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(15)
		m := n + rng.Intn(120)
		q := make([]float64, n)
		s := make([]float64, m)
		for i := range q {
			q[i] = rng.NormFloat64()
		}
		for j := range s {
			s[j] = rng.NormFloat64()
		}
		got, err := eng.Subsequence(q, s)
		if err != nil {
			t.Fatal(err)
		}
		want, err := dtw.Subsequence(q, s, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: engine %+v, offline %+v", trial, got, want)
		}
	}
	if _, err := eng.Subsequence(nil, []float64{1}); !errors.Is(err, ErrEmptySeries) {
		t.Fatalf("empty query: got %v, want ErrEmptySeries", err)
	}
}

// TestMonitorMultiQueryFanOut: a multi-query monitor must report, per
// query, exactly the offline answer — independent of the worker count.
func TestMonitorMultiQueryFanOut(t *testing.T) {
	d := TraceDataset(DatasetConfig{Seed: 19, SeriesPerClass: 3})
	queries := d.Series[:6]
	_, stream := streamWorkload(t, "Trace", 3, 2000)
	for _, workers := range []int{1, 4} {
		m, err := NewMonitor(queries, Options{}, WithMonitorWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.PushBatch(context.Background(), stream); err != nil {
			t.Fatal(err)
		}
		matches, err := m.Flush()
		if err != nil {
			t.Fatal(err)
		}
		if len(matches) != len(queries) {
			t.Fatalf("workers=%d: %d best matches, want one per query", workers, len(matches))
		}
		for _, got := range matches {
			want, err := dtw.Subsequence(queries[got.Query].Values, stream, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got.Start != want.Start || got.End != want.End || got.Distance != want.Distance {
				t.Fatalf("workers=%d query %d: [%d,%d] %v, offline [%d,%d] %v",
					workers, got.Query, got.Start, got.End, got.Distance, want.Start, want.End, want.Distance)
			}
			if got.QueryID != queries[got.Query].ID {
				t.Fatalf("match %+v does not carry its query's ID %q", got, queries[got.Query].ID)
			}
		}
	}
}

// TestMonitorThresholdEmission plants warped occurrences of a pattern in
// a hostile stream and checks streaming emission: every plant reported
// with sensible bounds, matches non-overlapping, MinGap honoured, and
// the match count visible in Stats.
func TestMonitorThresholdEmission(t *testing.T) {
	pattern := []float64{0, 1, 3, 1, 0}
	warped := []float64{0, 1, 1, 3, 1, 0} // time-warped plant, still distance 0
	var stream []float64
	filler := func(k int) {
		for i := 0; i < k; i++ {
			stream = append(stream, 9)
		}
	}
	filler(10)
	plant1 := len(stream)
	stream = append(stream, pattern...)
	filler(20)
	plant2 := len(stream)
	stream = append(stream, warped...)
	filler(10)

	m, err := NewMonitor([]Series{NewSeries("p", 0, pattern)}, Options{}, WithMatchThreshold(0.25))
	if err != nil {
		t.Fatal(err)
	}
	var got []Match
	for _, v := range stream {
		out, err := m.Push(context.Background(), v)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, out...)
	}
	final, err := m.Flush()
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, final...)
	if len(got) != 2 {
		t.Fatalf("emitted %+v, want both plants", got)
	}
	if got[0].Start != plant1 || got[0].End != plant1+len(pattern)-1 || got[0].Distance != 0 {
		t.Fatalf("first match %+v, want [%d,%d] at 0", got[0], plant1, plant1+len(pattern)-1)
	}
	if got[1].Start != plant2 || got[1].End != plant2+len(warped)-1 || got[1].Distance != 0 {
		t.Fatalf("second match %+v, want [%d,%d] at 0", got[1], plant2, plant2+len(warped)-1)
	}
	if got[1].Start <= got[0].End {
		t.Fatalf("overlapping matches %+v", got)
	}
	if st := m.Stats(); st.Matches != 2 || st.PerQuery[0].Matches != 2 {
		t.Fatalf("stats lost matches: %+v", st)
	}

	// A MinGap wider than the spacing suppresses the second plant.
	m2, err := NewMonitor([]Series{NewSeries("p", 0, pattern)}, Options{},
		WithMatchThreshold(0.25), WithMinGap(len(stream)))
	if err != nil {
		t.Fatal(err)
	}
	out, err := m2.PushBatch(context.Background(), stream)
	if err != nil {
		t.Fatal(err)
	}
	if final, err = m2.Flush(); err != nil {
		t.Fatal(err)
	}
	if total := len(out) + len(final); total != 1 {
		t.Fatalf("MinGap monitor emitted %d matches, want 1", total)
	}
}

// TestMonitorBestOnlyThresholdFilter: WithBestOnly + WithMatchThreshold
// reports the best match only when it is within the threshold.
func TestMonitorBestOnlyThresholdFilter(t *testing.T) {
	query := []float64{0, 5, 0}
	stream := []float64{9, 9, 9, 9, 9, 9}
	m, err := NewMonitor([]Series{{Values: query}}, Options{}, WithBestOnly(), WithMatchThreshold(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.PushBatch(context.Background(), stream); err != nil {
		t.Fatal(err)
	}
	matches, err := m.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Fatalf("out-of-threshold best reported: %+v", matches)
	}
}

// TestMonitorValidationTable is the uniform-validation property for the
// streaming surface: every boundary reports the package sentinel via
// errors.Is, matching the Search conventions.
func TestMonitorValidationTable(t *testing.T) {
	valid := []Series{NewSeries("q", 0, []float64{1, 2, 1})}
	cases := []struct {
		name    string
		queries []Series
		mopts   []MonitorOption
		wantErr error // nil means success; "any" means any error
	}{
		{"no queries", nil, nil, ErrEmptyCollection},
		{"empty query", []Series{{ID: "q"}}, nil, ErrEmptySeries},
		{"empty query among valid", append([]Series{valid[0]}, Series{ID: "r"}), nil, ErrEmptySeries},
		{"duplicate IDs", []Series{valid[0], NewSeries("q", 1, []float64{3, 4})}, nil, ErrDuplicateID},
		{"NaN threshold", valid, []MonitorOption{WithMatchThreshold(math.NaN())}, errors.New("any")},
		{"negative threshold", valid, []MonitorOption{WithMatchThreshold(-1)}, errors.New("any")},
		{"negative gap", valid, []MonitorOption{WithMinGap(-1)}, errors.New("any")},
		{"ok default", valid, nil, nil},
		{"ok threshold", valid, []MonitorOption{WithMatchThreshold(2), WithMinGap(3), WithMonitorWorkers(2)}, nil},
	}
	for _, tc := range cases {
		_, err := NewMonitor(tc.queries, Options{}, tc.mopts...)
		switch {
		case tc.wantErr == nil:
			if err != nil {
				t.Fatalf("%s: unexpected error %v", tc.name, err)
			}
		case tc.wantErr.Error() == "any":
			if err == nil {
				t.Fatalf("%s: bad input accepted", tc.name)
			}
		default:
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("%s: got %v, want %v", tc.name, err, tc.wantErr)
			}
		}
	}

	// The one-shot helpers wrap the same sentinels.
	if _, err := Subsequence(nil, []float64{1}); !IsErr(err, ErrEmptySeries) {
		t.Fatalf("Subsequence empty query: got %v", err)
	}
	if _, err := Subsequence([]float64{1}, nil); !IsErr(err, ErrEmptySeries) {
		t.Fatalf("Subsequence empty stream: got %v", err)
	}
	if _, err := DTW(nil, []float64{1}); !IsErr(err, ErrEmptySeries) {
		t.Fatalf("DTW empty input: got %v", err)
	}
	if _, _, err := DTWPath(nil, []float64{1}); !IsErr(err, ErrEmptySeries) {
		t.Fatalf("DTWPath empty input: got %v", err)
	}
	if _, err := SakoeChibaDTW(nil, []float64{1}, 0.1); !IsErr(err, ErrEmptySeries) {
		t.Fatalf("SakoeChibaDTW empty input: got %v", err)
	}

	// A flushed monitor rejects every further call with ErrMonitorClosed.
	m, err := NewMonitor(valid, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Push(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Push(context.Background(), 1); !IsErr(err, ErrMonitorClosed) {
		t.Fatalf("Push after Flush: got %v, want ErrMonitorClosed", err)
	}
	if _, err := m.PushBatch(context.Background(), []float64{1, 2}); !IsErr(err, ErrMonitorClosed) {
		t.Fatalf("PushBatch after Flush: got %v, want ErrMonitorClosed", err)
	}
	if _, err := m.Flush(); !IsErr(err, ErrMonitorClosed) {
		t.Fatalf("second Flush: got %v, want ErrMonitorClosed", err)
	}
	// Stats keeps answering after close.
	if st := m.Stats(); st.Points != 1 {
		t.Fatalf("post-Flush stats: %+v", st)
	}
}

// TestMonitorPushNoAlloc is the O(|q|)-memory acceptance check: after
// warm-up, pushing a point through a 150-point-query monitor allocates
// nothing.
func TestMonitorPushNoAlloc(t *testing.T) {
	query, stream := streamWorkload(t, "Gun", 4, 2000)
	m, err := NewMonitor([]Series{NewSeries("q", 0, query)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, v := range stream[:500] { // warm-up
		if _, err := m.Push(ctx, v); err != nil {
			t.Fatal(err)
		}
	}
	i := 500
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := m.Push(ctx, stream[i%len(stream)]); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("Push allocates %.1f objects per point after warm-up, want 0", allocs)
	}
}

// TestMonitorCancellation: a context cancelled before any work leaves the
// monitor reusable; one cancelled mid-batch stops the stream promptly
// with context.Canceled, closes the monitor, and leaks no goroutines.
func TestMonitorCancellation(t *testing.T) {
	// Pre-cancelled: no state consumed, monitor stays open.
	m, err := NewMonitor([]Series{NewSeries("q", 0, []float64{1, 2, 3})}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.Push(ctx, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled Push: got %v, want context.Canceled", err)
	}
	if st := m.Stats(); st.Points != 0 {
		t.Fatalf("pre-cancelled Push consumed %d points", st.Points)
	}
	if _, err := m.Push(context.Background(), 1); err != nil {
		t.Fatalf("monitor unusable after pre-cancelled push: %v", err)
	}

	// Mid-batch: a long stream against several long queries, cancelled
	// mid-flight from outside.
	rng := rand.New(rand.NewSource(41))
	queries := make([]Series, 4)
	for i := range queries {
		q := make([]float64, 1000)
		for j := range q {
			q[j] = rng.NormFloat64()
		}
		queries[i] = NewSeries("", i, q)
	}
	stream := make([]float64, 400_000)
	for i := range stream {
		stream[i] = rng.NormFloat64()
	}
	mon, err := NewMonitor(queries, Options{}, WithMonitorWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	ctx, cancel = context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := mon.PushBatch(ctx, stream)
		done <- err
	}()
	time.Sleep(15 * time.Millisecond)
	cancel()
	select {
	case err = <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("mid-batch cancel: got %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled PushBatch did not return within 5s")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("cancelled PushBatch took %v to return", elapsed)
	}
	// The monitor is closed: its queries may disagree on the position.
	if _, err := mon.Push(context.Background(), 1); !errors.Is(err, ErrMonitorClosed) {
		t.Fatalf("Push after mid-batch cancel: got %v, want ErrMonitorClosed", err)
	}
	// All fan-out goroutines must have drained.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if after := runtime.NumGoroutine(); after <= before+2 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after cancellation", before, after)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMonitorStatsRace exercises the documented concurrency contract
// under -race: one goroutine pushes, another reads Stats, and Flush
// leaves no goroutines behind.
func TestMonitorStatsRace(t *testing.T) {
	query, stream := streamWorkload(t, "Gun", 8, 4000)
	m, err := NewMonitor([]Series{NewSeries("q", 0, query), NewSeries("r", 1, stream[:100])},
		Options{}, WithMatchThreshold(1e9), WithMonitorWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = m.Stats()
			}
		}
	}()
	ctx := context.Background()
	for off := 0; off < len(stream); off += 256 {
		end := off + 256
		if end > len(stream) {
			end = len(stream)
		}
		if _, err := m.PushBatch(ctx, stream[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if st := m.Stats(); st.Points != int64(len(stream)) {
		t.Fatalf("stats after race run: %+v", st)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if after := runtime.NumGoroutine(); after <= before+2 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after Flush: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMonitorNilContext regression-pins nil-context tolerance on the
// streaming surface. Push and PushBatch used to call ctx.Err() directly
// and panic on a nil context, while Index.Search has always tolerated
// one — a server handing its (possibly nil) request context straight to
// the monitor tripped on the asymmetry.
func TestMonitorNilContext(t *testing.T) {
	query, stream := streamWorkload(t, "Gun", 2, 400)
	m, err := NewMonitor([]Series{NewSeries("q", 0, query)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range stream[:200] {
		if _, err := m.Push(nil, v); err != nil { //nolint:staticcheck // nil ctx tolerance is the contract under test
			t.Fatalf("nil-ctx Push: %v", err)
		}
	}
	if _, err := m.PushBatch(nil, stream[200:]); err != nil { //nolint:staticcheck
		t.Fatalf("nil-ctx PushBatch: %v", err)
	}
	matches, err := m.Flush()
	if err != nil {
		t.Fatalf("Flush after nil-ctx pushes: %v", err)
	}
	if len(matches) != 1 {
		t.Fatalf("Flush returned %d matches, want 1", len(matches))
	}

	// The retrieval surfaces tolerate nil the same way — pin all three so
	// the two halves of the API cannot drift apart again.
	d := GunDataset(DatasetConfig{Seed: 3, SeriesPerClass: 3})
	ix, err := NewIndex(d.Series, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ix.Search(nil, d.Series[0], WithK(1)); err != nil { //nolint:staticcheck
		t.Fatalf("nil-ctx Index.Search: %v", err)
	}
	six, err := NewShardedIndex(d.Series, 2, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := six.Search(nil, d.Series[0], WithK(1)); err != nil { //nolint:staticcheck
		t.Fatalf("nil-ctx ShardedIndex.Search: %v", err)
	}
}

// TestMonitorTerminalState regression-pins the monitor's terminal-state
// contract, which the Hub relies on when recycling stream state: Flush
// closes the monitor exactly once, and every subsequent Push, PushBatch
// or Flush — by any path into the closed state, including a mid-batch
// cancellation — reports ErrMonitorClosed while Stats stays readable.
func TestMonitorTerminalState(t *testing.T) {
	query, stream := streamWorkload(t, "Gun", 2, 300)

	t.Run("flushed", func(t *testing.T) {
		m, err := NewMonitor([]Series{NewSeries("q", 0, query)}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.PushBatch(context.Background(), stream); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Flush(); err != nil {
			t.Fatalf("first Flush: %v", err)
		}
		if _, err := m.Flush(); !IsErr(err, ErrMonitorClosed) {
			t.Fatalf("double Flush: %v, want ErrMonitorClosed", err)
		}
		if _, err := m.Push(context.Background(), 1); !IsErr(err, ErrMonitorClosed) {
			t.Fatalf("Push after Flush: %v, want ErrMonitorClosed", err)
		}
		if _, err := m.PushBatch(context.Background(), stream[:4]); !IsErr(err, ErrMonitorClosed) {
			t.Fatalf("PushBatch after Flush: %v, want ErrMonitorClosed", err)
		}
		// Stats survives the close and still reflects the consumed stream.
		if st := m.Stats(); st.Points != int64(len(stream)) {
			t.Fatalf("post-Flush Stats.Points = %d, want %d", st.Points, len(stream))
		}
	})

	t.Run("cancelled mid-batch", func(t *testing.T) {
		queries := []Series{NewSeries("a", 0, query), NewSeries("b", 0, query)}
		m, err := NewMonitor(queries, Options{}, WithMonitorWorkers(1))
		if err != nil {
			t.Fatal(err)
		}
		// A context that survives push's entry check and cancels at the
		// first in-batch poll: deterministic mid-batch cancellation (a
		// cancellation before any work leaves the monitor reusable, by
		// contract).
		ctx := &cancelAfterCtx{Context: context.Background(), after: 1}
		big := make([]float64, 4096)
		if _, err := m.PushBatch(ctx, big); !IsErr(err, context.Canceled) {
			t.Fatalf("cancelled PushBatch: %v, want context.Canceled", err)
		}
		if _, err := m.Flush(); !IsErr(err, ErrMonitorClosed) {
			t.Fatalf("Flush after mid-batch cancel: %v, want ErrMonitorClosed", err)
		}
		if _, err := m.Push(context.Background(), 1); !IsErr(err, ErrMonitorClosed) {
			t.Fatalf("Push after mid-batch cancel: %v, want ErrMonitorClosed", err)
		}
	})
}

// cancelAfterCtx reports Canceled from its (after+1)-th Err() call on —
// a deterministic stand-in for a context cancelled mid-batch.
type cancelAfterCtx struct {
	context.Context
	calls, after int
}

func (c *cancelAfterCtx) Err() error {
	c.calls++
	if c.calls > c.after {
		return context.Canceled
	}
	return nil
}
