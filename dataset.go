package sdtw

import (
	"io"

	"sdtw/internal/datasets"
)

// Dataset is a labeled collection of equal-length series, re-exported from
// the internal generators so examples and downstream users can reproduce
// the paper's workloads through the public API.
type Dataset = datasets.Dataset

// DatasetConfig scales and seeds the synthetic workload generators.
type DatasetConfig = datasets.Config

// GunDataset synthesises the 2-class gun/point workload of the paper's
// Table 1 (length 150, 50 series). See internal/datasets for the
// substitution rationale: the UCR originals are not redistributable, so
// structurally matched synthetic series stand in.
func GunDataset(cfg DatasetConfig) *Dataset { return datasets.Gun(cfg) }

// TraceDataset synthesises the 4-class transient workload (length 275,
// 100 series).
func TraceDataset(cfg DatasetConfig) *Dataset { return datasets.Trace(cfg) }

// FiftyWordsDataset synthesises the 50-class word-profile workload
// (length 270, 450 series).
func FiftyWordsDataset(cfg DatasetConfig) *Dataset { return datasets.FiftyWords(cfg) }

// DatasetByName generates a paper workload by name ("Gun", "Trace" or
// "50Words").
func DatasetByName(name string, cfg DatasetConfig) (*Dataset, error) {
	return datasets.ByName(name, cfg)
}

// WriteUCR writes a data set in the UCR text format (label first, then
// values, comma-separated, one series per line).
func WriteUCR(w io.Writer, d *Dataset) error { return datasets.WriteUCR(w, d) }

// ReadUCR parses a data set in the UCR text format.
func ReadUCR(r io.Reader, name string) (*Dataset, error) { return datasets.ReadUCR(r, name) }
