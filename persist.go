package sdtw

import (
	"encoding/gob"
	"fmt"
	"io"

	"sdtw/internal/lower"
	"sdtw/internal/retrieve"
	"sdtw/internal/shard"
	"sdtw/internal/sift"
)

// indexSnapshot is the on-wire form of a whole index: the collection, the
// precomputed one-time costs (salient features and LB_Keogh envelopes),
// and the configuration fingerprint that guards against loading the
// snapshot under options that would change its answers.
type indexSnapshot struct {
	// Version guards against decoding snapshots written by incompatible
	// layouts.
	Version int
	// Kind is "engine" (sDTW) or "windowed".
	Kind string
	// Fingerprint is the backend configuration fingerprint the snapshot
	// was written under.
	Fingerprint string
	// Length and Radius reconstruct the windowed backend (engine options
	// are not serialisable — they hold functions — so engine snapshots
	// take them from the LoadIndex caller and verify the fingerprint).
	Length, Radius int
	Series         []Series
	Envelopes      []lower.Envelope
	// Features is the engine's salient-feature cache; nil for windowed
	// snapshots.
	Features map[string][]sift.Feature
}

const indexSnapshotVersion = 1

const (
	snapshotKindEngine   = "engine"
	snapshotKindWindowed = "windowed"
)

// Save serialises the whole index (gob): the collection, the LB_Keogh
// envelopes, the salient-feature cache (engine backend), and a
// configuration fingerprint. The one-time indexing costs (§3.4) are paid
// once, persisted, and shipped alongside the data; LoadIndex (or
// LoadWindowedIndex) restores the index without re-extracting anything.
//
// Indexes with a custom PointDistance serialise with the function's
// presence recorded but not its behaviour — functions cannot be encoded —
// so such snapshots must be loaded under the same function to yield the
// same distances. With Options.DisableCache the engine holds no feature
// cache to persist: the snapshot carries series and envelopes only, and
// the restored index re-extracts features lazily per comparison, exactly
// as the original did.
func (ix *Index) Save(w io.Writer) error {
	if ix.core.Cold() {
		return fmt.Errorf("sdtw: Save: raw values live in the segment store, not in RAM: %w", ErrStoreBacked)
	}
	// The feature cache is captured inside the same lock acquisition as
	// the collection snapshot: a Remove+Add reusing a series ID between
	// the two captures would otherwise pair the old series' values with
	// the new series' features in the snapshot.
	var features map[string][]sift.Feature
	capture := func() {}
	if ix.engine != nil {
		capture = func() { features = ix.engine.inner.CacheSnapshot() }
	}
	data, envs := ix.core.Snapshot(capture)
	snap := indexSnapshot{
		Version:   indexSnapshotVersion,
		Series:    data,
		Envelopes: envs,
	}
	// The fingerprint is the backend's own — the single source of truth —
	// so Save and the Load-side check can never drift apart.
	snap.Fingerprint = ix.core.Fingerprint()
	if ix.engine != nil {
		snap.Kind = snapshotKindEngine
		// Keep only the features of the saved series: the cache also
		// holds query-series features, which would bloat the snapshot
		// and plant entries for series the collection does not contain.
		// Every saved series has its features cached already (Admit
		// warms under the write lock before the series becomes visible),
		// so the filtered map is complete.
		snap.Features = make(map[string][]sift.Feature, len(data))
		for _, s := range data {
			if feats, ok := features[s.ID]; ok {
				snap.Features[s.ID] = feats
			}
		}
	} else {
		snap.Kind = snapshotKindWindowed
		snap.Length = data[0].Len()
		snap.Radius = ix.radius
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("sdtw: encoding index snapshot: %w", err)
	}
	return nil
}

// LoadIndex restores an engine-backed index written by Save. opts must
// describe the same engine configuration the snapshot was written under:
// a differing fingerprint reports ErrConfigMismatch rather than silently
// serving distances the persisted features and envelopes are wrong for.
// Windowed snapshots are refused too (use LoadWindowedIndex — their
// configuration travels inside the snapshot).
func LoadIndex(r io.Reader, opts Options) (*Index, error) {
	snap, err := decodeSnapshot(r)
	if err != nil {
		return nil, err
	}
	if snap.Kind != snapshotKindEngine {
		return nil, fmt.Errorf("sdtw: snapshot holds a %s index, want %s (use LoadWindowedIndex): %w",
			snap.Kind, snapshotKindEngine, ErrConfigMismatch)
	}
	if fp := engineFingerprint(opts); fp != snap.Fingerprint {
		return nil, fmt.Errorf("sdtw: snapshot written under %q, loading under %q: %w",
			snap.Fingerprint, fp, ErrConfigMismatch)
	}
	engine := NewEngine(opts)
	engine.inner.RestoreCache(snap.Features)
	backend := retrieve.NewEngineBackend(engine.inner, engineFingerprint(opts), opts.PointDistance != nil)
	core, err := retrieve.Restore(backend, snap.Series, snap.Envelopes, indexWorkers(opts.Workers), !opts.DisableAbandon)
	if err != nil {
		return nil, fmt.Errorf("sdtw: %w", err)
	}
	if w := resolveSketchWidth(opts.SketchWidth); w > 0 {
		if err := core.EnableSketches(w); err != nil {
			return nil, fmt.Errorf("sdtw: %w", err)
		}
	}
	return &Index{core: core, engine: engine, radius: -1}, nil
}

// LoadWindowedIndex restores a windowed index written by Save. The
// windowed configuration (length and radius) is fully serialisable, so it
// travels inside the snapshot and needs no caller-side options.
func LoadWindowedIndex(r io.Reader) (*Index, error) {
	snap, err := decodeSnapshot(r)
	if err != nil {
		return nil, err
	}
	if snap.Kind != snapshotKindWindowed {
		return nil, fmt.Errorf("sdtw: snapshot holds a %s index, want %s (use LoadIndex): %w",
			snap.Kind, snapshotKindWindowed, ErrConfigMismatch)
	}
	backend, eff, err := retrieve.NewWindowedBackend(snap.Length, snap.Radius)
	if err != nil {
		return nil, fmt.Errorf("sdtw: %w", err)
	}
	// Rebuilding the backend from the snapshot's own parameters must
	// reproduce the fingerprint it was written under; a mismatch means
	// the fingerprint format was revved (or the snapshot edited) and the
	// persisted envelopes cannot be trusted.
	if fp := backend.Fingerprint(); fp != snap.Fingerprint {
		return nil, fmt.Errorf("sdtw: snapshot written under %q, rebuilt backend is %q: %w",
			snap.Fingerprint, fp, ErrConfigMismatch)
	}
	core, err := retrieve.Restore(backend, snap.Series, snap.Envelopes, indexWorkers(0), true)
	if err != nil {
		return nil, fmt.Errorf("sdtw: %w", err)
	}
	if err := core.EnableSketches(DefaultSketchWidth); err != nil {
		return nil, fmt.Errorf("sdtw: %w", err)
	}
	return &Index{core: core, radius: eff}, nil
}

func decodeSnapshot(r io.Reader) (indexSnapshot, error) {
	var snap indexSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return snap, fmt.Errorf("sdtw: decoding index snapshot: %w", err)
	}
	if snap.Version != indexSnapshotVersion {
		return snap, fmt.Errorf("sdtw: index snapshot version %d, want %d: %w",
			snap.Version, indexSnapshotVersion, ErrConfigMismatch)
	}
	return snap, nil
}

// shardedSnapshot is the on-wire form of a whole sharded index: the
// per-shard collections, precomputed one-time costs, insertion sequences
// (the cross-shard tie-break order), and the configuration fingerprint.
// Keeping the state per shard means a load rebuilds every shard exactly
// as it was — no re-routing, no envelope recomputation.
type shardedSnapshot struct {
	Version     int
	Kind        string
	Fingerprint string
	// Shards is the shard count the cluster was saved under.
	Shards int
	// Length and Radius reconstruct windowed backends.
	Length, Radius int
	// NextSeq is the cluster's next insertion sequence; per-shard Seqs
	// preserve the global insertion order merged searches tie-break on.
	NextSeq        uint64
	ShardSeries    [][]Series
	ShardEnvelopes [][]lower.Envelope
	ShardSeqs      [][]uint64
	// ShardFeatures holds each shard engine's salient-feature cache; nil
	// for windowed snapshots.
	ShardFeatures []map[string][]sift.Feature
}

const shardedSnapshotVersion = 1

// Save serialises the whole sharded index (gob), shard by shard. Each
// shard's state is captured under that shard's read lock, so every shard
// is internally consistent; concurrent mutations on other shards may or
// may not be included (save during a quiet period for a point-in-time
// snapshot). NextSeq is captured last, so every captured sequence number
// is below it.
func (si *ShardedIndex) Save(w io.Writer) error {
	if si.cluster.Cold() {
		return fmt.Errorf("sdtw: Save: raw values live in the segment stores, not in RAM: %w", ErrStoreBacked)
	}
	snap := shardedSnapshot{
		Version:     shardedSnapshotVersion,
		Fingerprint: si.cluster.Fingerprint(),
		Shards:      si.shards,
		ShardSeries: make([][]Series, si.shards),
		ShardSeqs:   make([][]uint64, si.shards),
	}
	snap.ShardEnvelopes = make([][]lower.Envelope, si.shards)
	if si.engines != nil {
		snap.Kind = snapshotKindEngine
		snap.ShardFeatures = make([]map[string][]sift.Feature, si.shards)
	} else {
		snap.Kind = snapshotKindWindowed
		snap.Radius = si.radius
	}
	for i := 0; i < si.shards; i++ {
		var features map[string][]sift.Feature
		capture := func() {}
		if si.engines != nil {
			eng := si.engines[i]
			capture = func() { features = eng.inner.CacheSnapshot() }
		}
		data, envs, seqs := si.cluster.ShardSnapshot(i, capture)
		snap.ShardSeries[i] = data
		snap.ShardEnvelopes[i] = envs
		snap.ShardSeqs[i] = seqs
		if si.engines != nil {
			// Keep only the saved series' features (the cache also holds
			// query features; see Index.Save).
			kept := make(map[string][]sift.Feature, len(data))
			for _, s := range data {
				if feats, ok := features[s.ID]; ok {
					kept[s.ID] = feats
				}
			}
			snap.ShardFeatures[i] = kept
		}
		if snap.Kind == snapshotKindWindowed && len(data) > 0 && snap.Length == 0 {
			snap.Length = data[0].Len()
		}
	}
	snap.NextSeq = si.cluster.NextSeq()
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("sdtw: encoding sharded index snapshot: %w", err)
	}
	return nil
}

// LoadShardedIndex restores an engine-backed sharded index written by
// ShardedIndex.Save. opts must describe the same engine configuration
// the snapshot was written under (ErrConfigMismatch otherwise); the
// shard count travels inside the snapshot.
func LoadShardedIndex(r io.Reader, opts Options) (*ShardedIndex, error) {
	snap, err := decodeShardedSnapshot(r)
	if err != nil {
		return nil, err
	}
	if snap.Kind != snapshotKindEngine {
		return nil, fmt.Errorf("sdtw: snapshot holds a %s sharded index, want %s (use LoadShardedWindowedIndex): %w",
			snap.Kind, snapshotKindEngine, ErrConfigMismatch)
	}
	if fp := engineFingerprint(opts); fp != snap.Fingerprint {
		return nil, fmt.Errorf("sdtw: snapshot written under %q, loading under %q: %w",
			snap.Fingerprint, fp, ErrConfigMismatch)
	}
	engines := make([]*Engine, snap.Shards)
	fp := engineFingerprint(opts)
	cfg := shard.Config{
		Shards: snap.Shards,
		NewBackend: func(i int) (retrieve.Backend, error) {
			engines[i] = NewEngine(opts)
			engines[i].inner.RestoreCache(snap.ShardFeatures[i])
			return retrieve.NewEngineBackend(engines[i].inner, fp, opts.PointDistance != nil), nil
		},
		Workers:     indexWorkers(opts.Workers),
		Abandon:     !opts.DisableAbandon,
		SketchWidth: resolveSketchWidth(opts.SketchWidth),
	}
	cluster, err := shard.Restore(cfg, snap.ShardSeries, snap.ShardEnvelopes, snap.ShardSeqs, snap.NextSeq)
	if err != nil {
		return nil, fmt.Errorf("sdtw: %w", err)
	}
	return &ShardedIndex{cluster: cluster, engines: engines, radius: -1, shards: snap.Shards}, nil
}

// LoadShardedWindowedIndex restores a windowed sharded index written by
// ShardedIndex.Save; its configuration travels inside the snapshot.
func LoadShardedWindowedIndex(r io.Reader) (*ShardedIndex, error) {
	snap, err := decodeShardedSnapshot(r)
	if err != nil {
		return nil, err
	}
	if snap.Kind != snapshotKindWindowed {
		return nil, fmt.Errorf("sdtw: snapshot holds a %s sharded index, want %s (use LoadShardedIndex): %w",
			snap.Kind, snapshotKindWindowed, ErrConfigMismatch)
	}
	eff := -1
	var fpErr error
	cfg := shard.Config{
		Shards: snap.Shards,
		NewBackend: func(i int) (retrieve.Backend, error) {
			b, e, err := retrieve.NewWindowedBackend(snap.Length, snap.Radius)
			if err != nil {
				return nil, err
			}
			eff = e
			if fp := b.Fingerprint(); fp != snap.Fingerprint && fpErr == nil {
				fpErr = fmt.Errorf("sdtw: snapshot written under %q, rebuilt backend is %q: %w",
					snap.Fingerprint, fp, ErrConfigMismatch)
			}
			return b, nil
		},
		Workers:     indexWorkers(0),
		Abandon:     true,
		SketchWidth: DefaultSketchWidth,
	}
	cluster, err := shard.Restore(cfg, snap.ShardSeries, snap.ShardEnvelopes, snap.ShardSeqs, snap.NextSeq)
	if err != nil {
		return nil, fmt.Errorf("sdtw: %w", err)
	}
	if fpErr != nil {
		return nil, fpErr
	}
	return &ShardedIndex{cluster: cluster, radius: eff, shards: snap.Shards}, nil
}

func decodeShardedSnapshot(r io.Reader) (shardedSnapshot, error) {
	var snap shardedSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return snap, fmt.Errorf("sdtw: decoding sharded index snapshot: %w", err)
	}
	if snap.Version != shardedSnapshotVersion {
		return snap, fmt.Errorf("sdtw: sharded index snapshot version %d, want %d: %w",
			snap.Version, shardedSnapshotVersion, ErrConfigMismatch)
	}
	if snap.Shards < 1 {
		return snap, fmt.Errorf("sdtw: sharded index snapshot has %d shards: %w", snap.Shards, ErrConfigMismatch)
	}
	return snap, nil
}
