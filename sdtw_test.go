package sdtw

import (
	"math"
	"testing"
	"testing/quick"
)

func warpedPair(t *testing.T) (Series, Series) {
	t.Helper()
	d := GunDataset(DatasetConfig{Seed: 77, SeriesPerClass: 2})
	return d.Series[0], d.Series[1]
}

func TestDTWBasics(t *testing.T) {
	d, err := DTW([]float64{1, 2, 3}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("DTW self = %v", d)
	}
	if _, err := DTW(nil, []float64{1}); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestDTWPathValid(t *testing.T) {
	x := []float64{0, 0, 1, 1, 0}
	y := []float64{0, 1, 1, 0, 0}
	d, p, err := DTWPath(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(len(x), len(y)); err != nil {
		t.Fatal(err)
	}
	if c := p.Cost(x, y, nil); math.Abs(c-d) > 1e-12 {
		t.Fatalf("path cost %v != distance %v", c, d)
	}
	if _, _, err := DTWPath(nil, y); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestSakoeChibaDTWDominatesFull(t *testing.T) {
	x, y := warpedPair(t)
	full, err := DTW(x.Values, y.Values)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []float64{0.06, 0.1, 0.2, 1.0} {
		banded, err := SakoeChibaDTW(x.Values, y.Values, w)
		if err != nil {
			t.Fatal(err)
		}
		if banded < full-1e-9 {
			t.Fatalf("w=%v: banded %v under full %v", w, banded, full)
		}
	}
	if _, err := SakoeChibaDTW(nil, y.Values, 0.1); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestEngineStrategies(t *testing.T) {
	x, y := warpedPair(t)
	full, err := DTW(x.Values, y.Values)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Strategy{FullGrid, FixedCoreFixedWidth, FixedCoreAdaptiveWidth,
		AdaptiveCoreFixedWidth, AdaptiveCoreAdaptiveWidth, AdaptiveCoreAdaptiveWidthAvg, ItakuraBand} {
		eng := NewEngine(Options{Strategy: s, WidthFrac: 0.1})
		res, err := eng.DistanceSeries(x, y)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if res.Distance < full-1e-9 {
			t.Fatalf("%v underestimates", s)
		}
		if s == FullGrid && math.Abs(res.Distance-full) > 1e-9 {
			t.Fatalf("full grid inexact: %v vs %v", res.Distance, full)
		}
	}
}

func TestDistanceOneShot(t *testing.T) {
	x, y := warpedPair(t)
	res, err := Distance(x.Values, y.Values, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Distance <= 0 {
		t.Fatalf("distance = %v", res.Distance)
	}
	if res.CellsGain() <= 0 {
		t.Fatalf("no pruning: %v", res.CellsGain())
	}
}

func TestOptionsPlumbing(t *testing.T) {
	x, _ := warpedPair(t)
	// Descriptor bins reach the extractor.
	for _, bins := range []int{8, 32} {
		feats, err := ExtractFeatures(x.Values, Options{DescriptorBins: bins})
		if err != nil {
			t.Fatal(err)
		}
		if len(feats) == 0 {
			t.Fatal("no features")
		}
		for _, f := range feats {
			if len(f.Descriptor) != bins {
				t.Fatalf("descriptor length %d, want %d", len(f.Descriptor), bins)
			}
		}
	}
	// Octave override reaches the scale space: a single octave yields
	// only fine features.
	feats, err := ExtractFeatures(x.Values, Options{Octaves: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range feats {
		if f.Octave != 0 {
			t.Fatalf("octave override ignored: feature at octave %d", f.Octave)
		}
	}
	// Custom point distance is honoured.
	res, err := Distance([]float64{0, 0}, []float64{2, 2}, Options{
		Strategy:      FullGrid,
		PointDistance: func(a, b float64) float64 { return math.Abs(a - b) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Distance != 4 {
		t.Fatalf("L1 distance = %v, want 4", res.Distance)
	}
}

func TestEngineComputePathOption(t *testing.T) {
	x, y := warpedPair(t)
	opts := DefaultOptions()
	opts.ComputePath = true
	res, err := NewEngine(opts).DistanceSeries(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.Path == nil {
		t.Fatal("path missing")
	}
	if err := res.Path.Validate(x.Len(), y.Len()); err != nil {
		t.Fatal(err)
	}
}

func TestEngineAlign(t *testing.T) {
	x, y := warpedPair(t)
	al, err := NewEngine(DefaultOptions()).Align(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if len(al.BoundsX) != len(al.BoundsY) {
		t.Fatalf("boundary lists differ: %v vs %v", al.BoundsX, al.BoundsY)
	}
}

func TestEngineWarmAndFeatures(t *testing.T) {
	d := GunDataset(DatasetConfig{Seed: 3, SeriesPerClass: 2})
	eng := NewEngine(DefaultOptions())
	if err := eng.Warm(d.Series); err != nil {
		t.Fatal(err)
	}
	feats, err := eng.Features(d.Series[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(feats) == 0 {
		t.Fatal("no features after warm")
	}
}

func TestSymmetricOptionMakesDistanceSymmetric(t *testing.T) {
	x, y := warpedPair(t)
	opts := DefaultOptions()
	opts.Symmetric = true
	eng := NewEngine(opts)
	dxy, err := eng.DistanceSeries(x, y)
	if err != nil {
		t.Fatal(err)
	}
	dyx, err := eng.DistanceSeries(y, x)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dxy.Distance-dyx.Distance) > 1e-9*(1+dxy.Distance) {
		t.Fatalf("symmetric distances differ: %v vs %v", dxy.Distance, dyx.Distance)
	}
}

func TestPropertyEstimateNeverBelowFull(t *testing.T) {
	d := TraceDataset(DatasetConfig{Seed: 13, SeriesPerClass: 3})
	eng := NewEngine(DefaultOptions())
	f := func(a, b uint8) bool {
		i := int(a) % d.Len()
		j := int(b) % d.Len()
		full, err := DTW(d.Series[i].Values, d.Series[j].Values)
		if err != nil {
			return false
		}
		res, err := eng.DistanceSeries(d.Series[i], d.Series[j])
		if err != nil {
			return false
		}
		return res.Distance >= full-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestNewSeries(t *testing.T) {
	s := NewSeries("q", 2, []float64{1, 2})
	if s.ID != "q" || s.Label != 2 || s.Len() != 2 {
		t.Fatalf("NewSeries = %+v", s)
	}
}
