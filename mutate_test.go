package sdtw

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// mutableConfigs are the backend constructors the mutability properties
// run against.
func mutableConfigs(t *testing.T) map[string]func([]Series) (*Index, error) {
	t.Helper()
	return map[string]func([]Series) (*Index, error){
		"engine": func(d []Series) (*Index, error) {
			return NewIndex(d, Options{Strategy: FixedCoreFixedWidth, WidthFrac: 0.10})
		},
		"windowed": func(d []Series) (*Index, error) {
			return NewWindowedIndex(d, 10)
		},
	}
}

// TestIndexAddMatchesRebuild is the incremental-maintenance property: an
// index grown series by series answers bit-identically to one built over
// the final collection in one shot — features, envelopes and candidate
// ordering all maintained incrementally.
func TestIndexAddMatchesRebuild(t *testing.T) {
	d := TraceDataset(DatasetConfig{Seed: 71, SeriesPerClass: 4})
	ctx := context.Background()
	for name, build := range mutableConfigs(t) {
		grown, err := build(d.Series[:4])
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range d.Series[4:] {
			if err := grown.Add(s); err != nil {
				t.Fatalf("%s: Add(%s): %v", name, s.ID, err)
			}
		}
		full, err := build(d.Series)
		if err != nil {
			t.Fatal(err)
		}
		if grown.Len() != full.Len() {
			t.Fatalf("%s: grown %d series, rebuilt %d", name, grown.Len(), full.Len())
		}
		for _, q := range []Series{d.Series[0], d.Series[d.Len()-1]} {
			got, _, err := grown.Search(ctx, q, WithK(5))
			if err != nil {
				t.Fatal(err)
			}
			want, _, err := full.Search(ctx, q, WithK(5))
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s: rank %d: grown %+v vs rebuilt %+v", name, i, got[i], want[i])
				}
			}
		}
	}
}

// TestIndexRemoveMatchesRebuild: removing series leaves an index that
// answers bit-identically to one built without them, with positions
// renumbered.
func TestIndexRemoveMatchesRebuild(t *testing.T) {
	d := TraceDataset(DatasetConfig{Seed: 72, SeriesPerClass: 4})
	ctx := context.Background()
	for name, build := range mutableConfigs(t) {
		shrunk, err := build(d.Series)
		if err != nil {
			t.Fatal(err)
		}
		removed := map[string]bool{d.Series[1].ID: true, d.Series[6].ID: true}
		for id := range removed {
			if err := shrunk.Remove(id); err != nil {
				t.Fatalf("%s: Remove(%s): %v", name, id, err)
			}
		}
		var rest []Series
		for _, s := range d.Series {
			if !removed[s.ID] {
				rest = append(rest, s)
			}
		}
		rebuilt, err := build(rest)
		if err != nil {
			t.Fatal(err)
		}
		if shrunk.Len() != rebuilt.Len() {
			t.Fatalf("%s: shrunk %d series, rebuilt %d", name, shrunk.Len(), rebuilt.Len())
		}
		for _, q := range []Series{rest[0], rest[len(rest)-1]} {
			got, _, err := shrunk.Search(ctx, q, WithK(4))
			if err != nil {
				t.Fatal(err)
			}
			want, _, err := rebuilt.Search(ctx, q, WithK(4))
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s: rank %d: shrunk %+v vs rebuilt %+v", name, i, got[i], want[i])
				}
			}
		}
		// Removed series are gone from the candidate set entirely.
		nbrs, stats, err := shrunk.Search(ctx, rest[0], WithK(shrunk.Len()))
		if err != nil {
			t.Fatal(err)
		}
		if stats.Candidates != shrunk.Len()-1 {
			t.Fatalf("%s: %d candidates, want %d", name, stats.Candidates, shrunk.Len()-1)
		}
		for _, nb := range nbrs {
			if removed[shrunk.Series(nb.Pos).ID] {
				t.Fatalf("%s: removed series returned: %+v", name, nb)
			}
		}
	}
}

// TestIndexAddEvictsQueryCachedFeatures is the cache-poisoning
// regression: the engine's feature cache is read-through and keyed by
// series ID, and search queries populate it too. Adding a series whose ID
// was previously seen as a *query* must re-extract features from the new
// series' values, not adopt the stale query entry — otherwise the index
// permanently serves another series' features under that ID.
func TestIndexAddEvictsQueryCachedFeatures(t *testing.T) {
	d := TraceDataset(DatasetConfig{Seed: 77, SeriesPerClass: 3})
	ix, err := NewIndex(d.Series[:d.Len()-2], DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// A query under the ID "q" plants its features in the cache.
	poison := d.Series[d.Len()-2]
	poison.ID = "q"
	if _, _, err := ix.Search(ctx, poison, WithK(2)); err != nil {
		t.Fatal(err)
	}
	// A different series is then added under the same ID.
	fresh := d.Series[d.Len()-1]
	fresh.ID = "q"
	if err := ix.Add(fresh); err != nil {
		t.Fatal(err)
	}
	// The mutated index must answer exactly like one built from scratch
	// over the same collection.
	rebuilt, err := NewIndex(append(append([]Series{}, d.Series[:d.Len()-2]...), fresh), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	probe := fresh
	probe.ID = "probe"
	got, _, err := ix.Search(ctx, probe, WithK(3))
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := rebuilt.Search(ctx, probe, WithK(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank %d: mutated index %+v, rebuilt %+v (stale query features adopted?)", i, got[i], want[i])
		}
	}
}

func TestIndexMutationValidation(t *testing.T) {
	d := TraceDataset(DatasetConfig{Seed: 73, SeriesPerClass: 2})
	ix, err := NewIndex(d.Series, Options{Strategy: FixedCoreFixedWidth, WidthFrac: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Add(NewSeries("", 0, nil)); !IsErr(err, ErrEmptySeries) {
		t.Fatalf("empty Add: got %v, want ErrEmptySeries", err)
	}
	if err := ix.Add(d.Series[0]); !IsErr(err, ErrDuplicateID) {
		t.Fatalf("duplicate Add: got %v, want ErrDuplicateID", err)
	}
	if err := ix.Remove("no-such-id"); !IsErr(err, ErrUnknownID) {
		t.Fatalf("unknown Remove: got %v, want ErrUnknownID", err)
	}
	if err := ix.Remove(""); err == nil {
		t.Fatal("empty-ID Remove accepted")
	}
	// The windowed backend additionally rejects wrong-length additions.
	wix, err := NewWindowedIndex(d.Series, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := wix.Add(NewSeries("short", 0, make([]float64, 3))); !IsErr(err, ErrLengthMismatch) {
		t.Fatalf("wrong-length Add: got %v, want ErrLengthMismatch", err)
	}
	// An index never becomes empty.
	two := []Series{d.Series[0], d.Series[1]}
	tiny, err := NewWindowedIndex(two, -1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tiny.Remove(two[0].ID); err != nil {
		t.Fatal(err)
	}
	if err := tiny.Remove(two[1].ID); !IsErr(err, ErrEmptyCollection) {
		t.Fatalf("removing the last series: got %v, want ErrEmptyCollection", err)
	}
}

// TestIndexConcurrentMutation hammers one index with concurrent searches,
// adds and removes (run under -race by the CI race lane): every search
// must return coherent results against whichever collection state it
// observed, and the index must stay internally consistent.
func TestIndexConcurrentMutation(t *testing.T) {
	d := TraceDataset(DatasetConfig{Seed: 74, SeriesPerClass: 6})
	base := d.Series[:12]
	extra := d.Series[12:]
	ix, err := NewIndex(base, Options{Strategy: FixedCoreFixedWidth, WidthFrac: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	// Searchers.
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for r := 0; r < 8; r++ {
				q := base[rng.Intn(len(base))]
				nbrs, _, err := ix.Search(ctx, q, WithK(3))
				if err != nil {
					errs <- err
					return
				}
				for i := 1; i < len(nbrs); i++ {
					if nbrs[i].Distance < nbrs[i-1].Distance {
						errs <- fmt.Errorf("unsorted neighbours under mutation: %+v", nbrs)
						return
					}
				}
				// Labels resolves neighbour labels under the search's
				// read lock, so it must never panic or mislabel while
				// Remove renumbers positions.
				if _, err := ix.Labels(ctx, q, WithK(3)); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	// Mutator: add every extra series, then remove them again.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, s := range extra {
			if err := ix.Add(s); err != nil {
				errs <- err
				return
			}
		}
		for _, s := range extra {
			if err := ix.Remove(s.ID); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if ix.Len() != len(base) {
		t.Fatalf("collection ended at %d series, want %d", ix.Len(), len(base))
	}
}
