package sdtw

import (
	"context"
	"errors"
	"math"
	"testing"
)

// IsErr is a terse errors.Is for test assertions.
func IsErr(err, target error) bool { return errors.Is(err, target) }

// searchIndexes builds one index per backend over the same equal-length
// workload, so validation and option tests cover both through the one
// Search surface.
func searchIndexes(t *testing.T) (map[string]*Index, *Dataset) {
	t.Helper()
	d := TraceDataset(DatasetConfig{Seed: 13, SeriesPerClass: 4})
	engine, err := NewIndex(d.Series, Options{Strategy: FixedCoreFixedWidth, WidthFrac: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	windowed, err := NewWindowedIndex(d.Series, 12)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*Index{"engine": engine, "windowed": windowed}, d
}

// TestSearchValidationTable is the uniform-validation property: every
// boundary of the option surface reports the same sentinel error on both
// backends.
func TestSearchValidationTable(t *testing.T) {
	indexes, d := searchIndexes(t)
	ctx := context.Background()
	for name, ix := range indexes {
		cases := []struct {
			name    string
			query   Series
			opts    []SearchOption
			wantErr error // nil means success
			wantLen int
		}{
			{"k=0", d.Series[0], []SearchOption{WithK(0)}, ErrBadK, 0},
			{"k=-3", d.Series[0], []SearchOption{WithK(-3)}, ErrBadK, 0},
			{"empty query", NewSeries("q", 0, nil), []SearchOption{WithK(3)}, ErrEmptySeries, 0},
			{"empty query values", Series{ID: "q", Values: []float64{}}, []SearchOption{WithK(3)}, ErrEmptySeries, 0},
			{"NaN threshold", d.Series[0], []SearchOption{WithThreshold(math.NaN())}, errors.New("any"), 0},
			{"k=1", d.Series[0], []SearchOption{WithK(1)}, nil, 1},
			{"default k", d.Series[0], nil, nil, 1},
			{"oversized k", d.Series[0], []SearchOption{WithK(10_000)}, nil, d.Len() - 1},
		}
		for _, tc := range cases {
			nbrs, _, err := ix.Search(ctx, tc.query, tc.opts...)
			switch {
			case tc.wantErr == nil:
				if err != nil {
					t.Fatalf("%s/%s: unexpected error %v", name, tc.name, err)
				}
				if len(nbrs) != tc.wantLen {
					t.Fatalf("%s/%s: %d neighbours, want %d", name, tc.name, len(nbrs), tc.wantLen)
				}
			case tc.wantErr.Error() == "any":
				if err == nil {
					t.Fatalf("%s/%s: bad input accepted", name, tc.name)
				}
			default:
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("%s/%s: got %v, want %v", name, tc.name, err, tc.wantErr)
				}
			}
		}
	}
	// The windowed backend additionally rejects wrong-length queries.
	short := NewSeries("short", 0, make([]float64, 7))
	if _, _, err := indexes["windowed"].Search(ctx, short, WithK(1)); !IsErr(err, ErrLengthMismatch) {
		t.Fatalf("windowed wrong-length query: got %v, want ErrLengthMismatch", err)
	}
	// Batches validate the same way and reject empty query lists.
	for name, ix := range indexes {
		if _, _, err := ix.SearchBatch(ctx, nil, WithK(1)); !IsErr(err, ErrEmptyCollection) {
			t.Fatalf("%s: empty batch: got %v, want ErrEmptyCollection", name, err)
		}
		if _, _, err := ix.SearchBatch(ctx, d.Series[:2], WithK(0)); !IsErr(err, ErrBadK) {
			t.Fatalf("%s: batch k=0: got %v, want ErrBadK", name, err)
		}
	}
}

// TestSearchThreshold checks WithThreshold semantics on both backends:
// alone it returns every neighbour within the threshold; with WithK it
// returns the k nearest within it; and it never changes which distances
// are reported, only which candidates survive.
func TestSearchThreshold(t *testing.T) {
	indexes, d := searchIndexes(t)
	ctx := context.Background()
	for name, ix := range indexes {
		q := d.Series[0]
		full, _, err := ix.Search(ctx, q, WithK(ix.Len()))
		if err != nil {
			t.Fatal(err)
		}
		// Cut halfway through the ranked list.
		cut := full[len(full)/2].Distance
		within, _, err := ix.Search(ctx, q, WithThreshold(cut))
		if err != nil {
			t.Fatal(err)
		}
		var want []Neighbor
		for _, nb := range full {
			if nb.Distance <= cut {
				want = append(want, nb)
			}
		}
		if len(within) != len(want) {
			t.Fatalf("%s: threshold %g returned %d neighbours, want %d", name, cut, len(within), len(want))
		}
		for i := range want {
			if within[i] != want[i] {
				t.Fatalf("%s: rank %d: %+v, want %+v", name, i, within[i], want[i])
			}
		}
		// WithK on top truncates the same list.
		topWithin, _, err := ix.Search(ctx, q, WithThreshold(cut), WithK(2))
		if err != nil {
			t.Fatal(err)
		}
		if len(topWithin) != 2 || topWithin[0] != want[0] || topWithin[1] != want[1] {
			t.Fatalf("%s: WithK+WithThreshold = %+v, want prefix of %+v", name, topWithin, want[:2])
		}
		// A threshold below every distance returns nothing, without error.
		none, _, err := ix.Search(ctx, q, WithThreshold(-1))
		if err != nil {
			t.Fatal(err)
		}
		if len(none) != 0 {
			t.Fatalf("%s: negative threshold returned %+v", name, none)
		}
	}
}

// TestSearchWithExclude checks positional exclusion for ID-less
// leave-one-out workloads.
func TestSearchWithExclude(t *testing.T) {
	data := []Series{
		NewSeries("", 0, []float64{0, 1, 2, 3, 2, 1, 0, 1}),
		NewSeries("", 1, []float64{0, 1, 2, 3, 2, 1, 0, 2}),
		NewSeries("", 2, []float64{5, 4, 3, 2, 3, 4, 5, 4}),
	}
	ix, err := NewIndex(data, Options{Strategy: FullGrid})
	if err != nil {
		t.Fatal(err)
	}
	// Without exclusion, querying series 0 finds itself at distance 0.
	nbrs, _, err := ix.Search(context.Background(), data[0], WithK(1))
	if err != nil {
		t.Fatal(err)
	}
	if nbrs[0].Pos != 0 || nbrs[0].Distance != 0 {
		t.Fatalf("expected self-match, got %+v", nbrs[0])
	}
	// WithExclude(0) removes it from the candidate set.
	nbrs, stats, err := ix.Search(context.Background(), data[0], WithK(1), WithExclude(0))
	if err != nil {
		t.Fatal(err)
	}
	if nbrs[0].Pos != 1 {
		t.Fatalf("excluded search returned pos %d, want 1", nbrs[0].Pos)
	}
	if stats.Candidates != 2 {
		t.Fatalf("candidates = %d after exclusion, want 2", stats.Candidates)
	}
	// The exclusion applies to every query of a batch, too.
	batch, bstats, err := ix.SearchBatch(context.Background(), data[:2], WithK(1), WithExclude(0))
	if err != nil {
		t.Fatal(err)
	}
	if bstats.Candidates != 4 {
		t.Fatalf("batch candidates = %d after exclusion, want 4", bstats.Candidates)
	}
	for qi, nb := range batch {
		if nb[0].Pos == 0 {
			t.Fatalf("batch query %d returned the excluded position: %+v", qi, nb[0])
		}
	}
}

// TestSearchWithWorkers checks worker-count overrides change scheduling
// only: a sequential search returns bit-identical neighbours to the
// default parallel one.
func TestSearchWithWorkers(t *testing.T) {
	indexes, d := searchIndexes(t)
	ctx := context.Background()
	for name, ix := range indexes {
		for _, q := range []Series{d.Series[0], d.Series[d.Len()-1]} {
			par, _, err := ix.Search(ctx, q, WithK(4))
			if err != nil {
				t.Fatal(err)
			}
			seq, _, err := ix.Search(ctx, q, WithK(4), WithWorkers(1))
			if err != nil {
				t.Fatal(err)
			}
			for i := range par {
				if par[i] != seq[i] {
					t.Fatalf("%s: rank %d: parallel %+v vs sequential %+v", name, i, par[i], seq[i])
				}
			}
		}
	}
}

// TestExplicitZeroThreshold regression-pins the zero-value threshold
// distinction on the public surface: WithThreshold(0) is a real range
// limit (exact matches only), not "unset" — the self-match at distance 0
// survives it, every other neighbour does not — while omitting the
// option means no limit at all.
func TestExplicitZeroThreshold(t *testing.T) {
	indexes, d := searchIndexes(t)
	ctx := context.Background()
	for name, ix := range indexes {
		q := NewSeries("probe", 0, d.Series[0].Values) // exact copy, distinct ID
		hits, _, err := ix.Search(ctx, q, WithThreshold(0))
		if err != nil {
			t.Fatalf("%s: threshold-0 search: %v", name, err)
		}
		if len(hits) != 1 || hits[0].Distance != 0 || hits[0].Pos != 0 {
			t.Fatalf("%s: threshold-0 search = %+v, want exactly the copy at position 0", name, hits)
		}
		all, _, err := ix.Search(ctx, q, WithK(d.Len()))
		if err != nil {
			t.Fatalf("%s: unthresholded search: %v", name, err)
		}
		if len(all) != d.Len() {
			t.Fatalf("%s: unthresholded search returned %d hits, want %d", name, len(all), d.Len())
		}
	}
}
