package sdtw

import (
	"fmt"

	"sdtw/internal/cluster"
	"sdtw/internal/core"
	"sdtw/internal/eval"
)

// Clustering is the outcome of k-medoids over a collection of series.
type Clustering struct {
	// Medoids holds the collection index of each cluster centre.
	Medoids []int
	// Assign maps every series to its cluster.
	Assign []int
	// Cost is the total within-cluster distance.
	Cost float64
	// Silhouette is the mean silhouette coefficient of the clustering
	// under the same distances.
	Silhouette float64
}

// Cluster groups the series into k clusters by k-medoids over pairwise
// distances computed with the given options (FullGrid for exact DTW, the
// adaptive strategies for sDTW). Distances are computed in parallel;
// clustering itself is deterministic for identical inputs.
func Cluster(data []Series, k int, opts Options) (*Clustering, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("sdtw: cannot cluster: %w", ErrEmptyCollection)
	}
	engine := core.NewEngine(opts.toCore())
	if _, err := engine.Warm(data); err != nil {
		return nil, err
	}
	var m *eval.Matrix
	var err error
	if opts.Strategy == FullGrid {
		m, err = eval.FullDTWMatrix(data, opts.PointDistance)
	} else {
		m, err = eval.EngineMatrix(engine, data)
	}
	if err != nil {
		return nil, err
	}
	res, err := cluster.KMedoids(m.D, k, 0)
	if err != nil {
		return nil, err
	}
	sil, err := cluster.Silhouette(m.D, res.Assign, k)
	if err != nil {
		return nil, err
	}
	return &Clustering{
		Medoids:    res.Medoids,
		Assign:     res.Assign,
		Cost:       res.Cost,
		Silhouette: sil,
	}, nil
}

// ClusterPurity measures the agreement of a clustering with the series'
// class labels: the fraction of series carrying their cluster's majority
// label.
func ClusterPurity(c *Clustering, data []Series) (float64, error) {
	if c == nil {
		return 0, fmt.Errorf("sdtw: nil clustering")
	}
	labels := make([]int, len(data))
	for i, s := range data {
		labels[i] = s.Label
	}
	return cluster.Purity(c.Assign, labels, len(c.Medoids))
}
