// Features: extract salient features from two related series, inspect
// their scales and scopes, visualise the consistent alignment, and show
// how the alignment shapes the DTW search band — the internals of sDTW
// made visible.
//
// Run with:
//
//	go run ./examples/features
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"sdtw"
)

func main() {
	data := sdtw.GunDataset(sdtw.DatasetConfig{Seed: 4, SeriesPerClass: 2})
	x, y := data.Series[0], data.Series[1]

	fmt.Printf("series X = %s, Y = %s (both gun-class, independently warped)\n\n", x.ID, y.ID)
	plot("X", x.Values)
	plot("Y", y.Values)

	// Salient features: scale-space extrema with scopes (3σ) and
	// gradient descriptors.
	feats, err := sdtw.ExtractFeatures(x.Values, sdtw.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d salient features on X (position, scale σ, scope radius):\n", len(feats))
	for _, f := range feats {
		fmt.Printf("  x=%3d  σ=%5.2f  scope=±%4.1f  octave=%d\n", f.X, f.Sigma, f.Scope, f.Octave)
	}

	// The consistent alignment: matched pairs whose scope boundaries are
	// identically ordered on both series.
	eng := sdtw.NewEngine(sdtw.DefaultOptions())
	al, err := eng.Align(x, y)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconsistent salient pairs: %d\n", al.Pairs)
	fmt.Printf("corresponding scope boundaries (X <-> Y):\n")
	for k := range al.BoundsX {
		fmt.Printf("  %3d <-> %3d\n", al.BoundsX[k], al.BoundsY[k])
	}

	// The resulting locally relevant constraint, with the exact warp
	// path it needs to contain.
	_, path, err := sdtw.DTWPath(x.Values, y.Values)
	if err != nil {
		log.Fatal(err)
	}
	onPath := make(map[[2]int]bool, len(path))
	for _, s := range path {
		onPath[[2]int{s.I, s.J}] = true
	}

	fmt.Println("\nDTW grid under (ac,aw) constraints ('#' band, '*' optimal path):")
	opts := sdtw.DefaultOptions()
	opts.KeepBand = true
	res, err := sdtw.NewEngine(opts).DistanceSeries(x, y)
	if err != nil {
		log.Fatal(err)
	}
	drawBandWithPath(res, path, x.Len(), y.Len())
	fmt.Printf("\nband fills %d of %d cells (%.1f%% pruned); estimate %.5f\n",
		res.CellsFilled, res.GridCells, 100*res.CellsGain(), res.Distance)
}

// plot renders a series as a one-line ASCII sparkline plus a coarse
// multi-row profile.
func plot(name string, v []float64) {
	const rows, cols = 8, 75
	lo, hi := v[0], v[0]
	for _, x := range v {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	if hi == lo {
		hi = lo + 1
	}
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols))
	}
	for i, x := range v {
		c := i * cols / len(v)
		r := int((x - lo) / (hi - lo) * float64(rows-1))
		grid[rows-1-r][c] = '.'
	}
	fmt.Printf("%s:\n", name)
	for _, row := range grid {
		fmt.Printf("  |%s\n", row)
	}
	fmt.Printf("  +%s\n", strings.Repeat("-", cols))
}

// drawBandWithPath rasterises the constraint band and the optimal warp
// path onto a character grid (row 0 at the bottom, as in the paper's
// figures).
func drawBandWithPath(res sdtw.Result, path sdtw.Path, n, m int) {
	const rows, cols = 30, 74
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols))
	}
	for i := 0; i < res.Band.N(); i++ {
		r := i * rows / n
		for j := res.Band.Lo[i]; j <= res.Band.Hi[i]; j++ {
			grid[rows-1-r][j*cols/m] = '#'
		}
	}
	for _, s := range path {
		r := s.I * rows / n
		c := s.J * cols / m
		grid[rows-1-r][c] = '*'
	}
	for _, row := range grid {
		fmt.Printf("  |%s\n", row)
	}
	fmt.Printf("  +%s\n", strings.Repeat("-", cols))
}
