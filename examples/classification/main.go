// Classification: leave-one-out k-nearest-neighbour classification of the
// Gun workload under exact DTW and under each sDTW constraint strategy,
// reporting accuracy against ground-truth labels and the grid work saved —
// the paper's Fig 16 experiment in miniature.
//
// Run with:
//
//	go run ./examples/classification
package main

import (
	"context"
	"fmt"
	"log"

	"sdtw"
)

func main() {
	data := sdtw.GunDataset(sdtw.DatasetConfig{Seed: 19, SeriesPerClass: 12})
	fmt.Printf("workload: %s — %d series, length %d, %d classes\n\n",
		data.Name, data.Len(), data.Length, data.NumClasses)

	strategies := []struct {
		name string
		opts sdtw.Options
	}{
		{"dtw (exact)", sdtw.Options{Strategy: sdtw.FullGrid}},
		{"fc,fw 10%", sdtw.Options{Strategy: sdtw.FixedCoreFixedWidth, WidthFrac: 0.10}},
		{"fc,aw", sdtw.Options{Strategy: sdtw.FixedCoreAdaptiveWidth}},
		{"ac,fw 10%", sdtw.Options{Strategy: sdtw.AdaptiveCoreFixedWidth, WidthFrac: 0.10}},
		{"ac,aw", sdtw.Options{Strategy: sdtw.AdaptiveCoreAdaptiveWidth}},
		{"ac2,aw", sdtw.Options{Strategy: sdtw.AdaptiveCoreAdaptiveWidthAvg}},
	}

	const k = 3
	fmt.Printf("%-12s %10s %12s\n", "strategy", "accuracy", "cells-gain")
	for _, s := range strategies {
		acc, gain, err := leaveOneOut(data, s.opts, k)
		if err != nil {
			log.Fatalf("%s: %v", s.name, err)
		}
		fmt.Printf("%-12s %10.3f %12.3f\n", s.name, acc, gain)
	}
	fmt.Println("\naccuracy = fraction of series whose kNN label set contains the true label")
}

// leaveOneOut classifies every series against all others and returns the
// fraction of correct label sets plus the mean grid-pruning gain.
func leaveOneOut(data *sdtw.Dataset, opts sdtw.Options, k int) (acc, gain float64, err error) {
	idx, err := sdtw.NewIndex(data.Series, opts)
	if err != nil {
		return 0, 0, err
	}
	correct := 0
	for i := 0; i < data.Len(); i++ {
		// Search skips the query itself (matching IDs), so this is
		// leave-one-out by construction.
		labels, err := idx.Labels(context.Background(), data.Series[i], sdtw.WithK(k))
		if err != nil {
			return 0, 0, err
		}
		for _, l := range labels {
			if l == data.Series[i].Label {
				correct++
				break
			}
		}
	}
	res, err := idx.Engine().DistanceSeries(data.Series[0], data.Series[1])
	if err != nil {
		return 0, 0, err
	}
	return float64(correct) / float64(data.Len()), res.CellsGain(), nil
}
