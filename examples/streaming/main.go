// Streaming: watch an unbounded stream for occurrences of query patterns
// with the Monitor API — SPRING-style incremental subsequence DTW.
//
// Two patterns (a pulse and a ramp) are planted into a noisy stream at
// known places, some of them time-warped. The monitor holds O(|query|)
// state per pattern, pays O(|query|) work per arriving point, and reports
// each occurrence as soon as it is provably final — no lookahead, no
// buffering of the stream, no re-scanning. The same machinery answers
// one-shot questions through Flush: a monitor built without a threshold
// reports exactly the offline Subsequence answer.
//
// Run with:
//
//	go run ./examples/streaming
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"sdtw"
)

func main() {
	pulse := []float64{0, 1.5, 3, 1.5, 0}
	ramp := []float64{0, 0.8, 1.6, 2.4, 3.2, 4}

	// Build a noisy stream with plants at known positions. Some plants
	// are time-warped: DTW absorbs the deformation, pointwise matching
	// would not.
	rng := rand.New(rand.NewSource(42))
	var stream []float64
	type planted struct {
		name       string
		start, end int
	}
	var plants []planted
	noise := func(k int) {
		for i := 0; i < k; i++ {
			stream = append(stream, rng.NormFloat64()*0.2)
		}
	}
	plant := func(name string, v []float64) {
		plants = append(plants, planted{name, len(stream), len(stream) + len(v) - 1})
		stream = append(stream, v...)
	}
	noise(120)
	plant("pulse", pulse)
	noise(200)
	plant("pulse (warped)", []float64{0, 0.7, 1.5, 3, 3, 1.5, 0}) // stretched pulse
	noise(150)
	plant("ramp", ramp)
	noise(100)
	plant("ramp (warped)", []float64{0, 0.4, 0.8, 1.6, 2.4, 3.2, 3.6, 4})
	noise(130)

	// overlapping names the plant a reported match region intersects.
	overlapping := func(start, end int) string {
		for _, p := range plants {
			if start <= p.end && end >= p.start {
				return p.name
			}
		}
		return "nothing — spurious"
	}

	fmt.Printf("stream: %d points with %d plants at known positions\n\n", len(stream), len(plants))

	// A monitor over both patterns: matches at distance <= 0.5 are
	// emitted as soon as they are confirmed, at least 20 points apart.
	mon, err := sdtw.NewMonitor(
		[]sdtw.Series{
			sdtw.NewSeries("pulse", 0, pulse),
			sdtw.NewSeries("ramp", 1, ramp),
		},
		sdtw.Options{},
		sdtw.WithMatchThreshold(0.5),
		sdtw.WithMinGap(20),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Feed the stream in small batches, as an ingestion loop would, and
	// print matches the moment the monitor confirms them.
	ctx := context.Background()
	const batch = 64
	for off := 0; off < len(stream); off += batch {
		end := off + batch
		if end > len(stream) {
			end = len(stream)
		}
		matches, err := mon.PushBatch(ctx, stream[off:end])
		if err != nil {
			log.Fatal(err)
		}
		for _, m := range matches {
			fmt.Printf("confirmed at point %5d: %-6s matched [%d,%d] distance %.3f (planted: %s)\n",
				end, m.QueryID, m.Start, m.End, m.Distance, overlapping(m.Start, m.End))
		}
	}
	// End-of-stream: confirm anything still pending.
	final, err := mon.Flush()
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range final {
		fmt.Printf("confirmed at end-of-stream: %-6s matched [%d,%d] distance %.3f (planted: %s)\n",
			m.QueryID, m.Start, m.End, m.Distance, overlapping(m.Start, m.End))
	}

	// The work accounting: every point cost exactly |pulse|+|ramp| DP
	// cells — independent of the stream length seen so far.
	st := mon.Stats()
	fmt.Printf("\n%d points, %d matches, %.0f DP cells/point, %v in Push\n",
		st.Points, st.Matches, float64(st.Cells)/float64(st.Points), st.PushTime.Round(time.Microsecond))
	for _, q := range st.PerQuery {
		fmt.Printf("  query %-6s matches=%d cells=%d time=%v\n",
			q.QueryID, q.Matches, q.Cells, q.Time.Round(time.Microsecond))
	}
}
