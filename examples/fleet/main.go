// Fleet streaming: many independent streams matched against shared
// standing queries in one process through sdtw.Hub — pooled SPRING
// state, a time-domain prefilter, and backpressured batch ingestion.
//
// By default the program drives itself: it synthesizes a fleet of
// sensor-like streams, plants warped occurrences of the standing
// patterns into some of them, pushes everything through the hub and
// reports the matches plus throughput/prefilter statistics.
//
// It can also ingest real data, one line per batch, formatted
//
//	<stream-id> <v1> <v2> ...
//
// either from stdin:
//
//	go run ./examples/sdtwgen | go run ./examples/fleet -stdin
//
// or from a TCP socket shared by any number of producers:
//
//	go run ./examples/fleet -listen :7071 &
//	printf 'sensor-1 0.1 0.9 0.2\n' | nc localhost 7071
//
// Unknown stream IDs are added on first sight; closing the input (or
// SIGINT) flushes the hub and prints the final accounting.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"time"

	"sdtw"
)

func main() {
	var (
		streams     = flag.Int("streams", 64, "synthetic mode: number of streams")
		points      = flag.Int("points", 20000, "synthetic mode: points per stream")
		threshold   = flag.Float64("threshold", 0.25, "match threshold (subsequence DTW distance)")
		listen      = flag.String("listen", "", "ingest line batches from this TCP address instead of synthesizing")
		stdin       = flag.Bool("stdin", false, "ingest line batches from stdin instead of synthesizing")
		noPrefilter = flag.Bool("noprefilter", false, "disable the time-domain prefilter (A/B; emissions are identical)")
		maxPrint    = flag.Int("print", 12, "print at most this many matches (0 silences them)")
	)
	flag.Parse()

	var hopts []sdtw.HubOption
	if *noPrefilter {
		hopts = append(hopts, sdtw.WithoutPrefilter())
	}
	hub := sdtw.NewHub(sdtw.Options{}, hopts...)

	// Standing queries: two short shape patterns every stream is watched
	// for. Real deployments would AddQuery/RemoveQuery at runtime too.
	patterns := map[string][]float64{
		"spike": {0, 0.4, 1.6, 0.4, 0},
		"step":  {0, 0, 0, 1, 1, 1},
	}
	for id, vals := range patterns {
		if err := hub.AddQuery(id, sdtw.NewSeries(id, 0, vals),
			sdtw.WithMatchThreshold(*threshold), sdtw.WithMinGap(len(vals))); err != nil {
			log.Fatal(err)
		}
	}

	runErr := make(chan error, 1)
	go func() { runErr <- hub.Run(context.Background()) }()

	// Consume matches as they confirm — a slow consumer here is exactly
	// what turns into ErrHubBackpressure at the producers.
	var printed, delivered int
	var consumeWG sync.WaitGroup
	consumeWG.Add(1)
	go func() {
		defer consumeWG.Done()
		for m := range hub.Matches() {
			delivered++
			if printed < *maxPrint {
				printed++
				fmt.Printf("match: stream=%-10s query=%-6s [%d,%d] dist=%.4f\n",
					m.Stream, m.Query, m.Start, m.End, m.Distance)
			}
		}
	}()

	start := time.Now()
	switch {
	case *listen != "":
		serveTCP(hub, *listen)
	case *stdin:
		ingestLines(hub, bufio.NewScanner(os.Stdin), "stdin")
	default:
		synthesize(hub, patterns, *streams, *points)
	}

	if err := hub.Flush(context.Background()); err != nil {
		log.Fatalf("flush: %v", err)
	}
	consumeWG.Wait()
	if err := <-runErr; err != nil {
		log.Fatalf("run: %v", err)
	}
	elapsed := time.Since(start)

	st := hub.Stats()
	fmt.Printf("\n%d matches delivered (%d printed)\n", delivered, printed)
	fmt.Printf("points:   %d accepted, %d rejected (backpressure), %.0f points/sec\n",
		st.Points, st.Rejected, float64(st.Processed)/elapsed.Seconds())
	appends := st.Appends + st.Skipped
	if appends > 0 {
		fmt.Printf("prefilter: %d of %d column advances skipped (%.1f%%)\n",
			st.Skipped, appends, 100*float64(st.Skipped)/float64(appends))
	}
	for _, q := range st.PerQuery {
		fmt.Printf("  query %-6s matches=%-5d appends=%-9d skipped=%d\n", q.ID, q.Matches, q.Appends, q.Skipped)
	}
}

// synthesize drives the hub with a generated fleet: noisy near-zero
// baselines with far excursions (dead stretches the prefilter elides)
// and warped plants of the standing patterns.
func synthesize(hub *sdtw.Hub, patterns map[string][]float64, streams, points int) {
	var wg sync.WaitGroup
	for s := 0; s < streams; s++ {
		id := fmt.Sprintf("sensor-%03d", s)
		if err := hub.AddStream(id); err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(id string, seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			batch := make([]float64, 0, 256)
			for pushed := 0; pushed < points; pushed, batch = pushed+len(batch), batch[:0] {
				switch rng.Intn(20) {
				case 0: // plant a (slightly warped) pattern occurrence
					for _, name := range []string{"spike", "step"} {
						if rng.Intn(2) == 0 {
							for _, v := range patterns[name] {
								batch = append(batch, v)
								if rng.Intn(4) == 0 {
									batch = append(batch, v) // warp: repeat a point
								}
							}
						}
					}
				case 1, 2, 3: // far excursion: provably matchless, prefilter food
					for i := rng.Intn(64); i >= 0; i-- {
						batch = append(batch, 40+rng.Float64())
					}
				default: // in-band noise
					for i := rng.Intn(64); i >= 0; i-- {
						batch = append(batch, rng.NormFloat64()*0.05)
					}
				}
				pushAll(hub, id, batch)
			}
		}(id, int64(s))
	}
	wg.Wait()
}

// pushAll pushes one batch, waiting out backpressure.
func pushAll(hub *sdtw.Hub, id string, batch []float64) {
	for {
		err := hub.PushBatch(id, batch)
		if err == nil {
			return
		}
		if !errors.Is(err, sdtw.ErrHubBackpressure) {
			log.Fatalf("push %s: %v", id, err)
		}
		time.Sleep(time.Millisecond)
	}
}

// ingestLines feeds "<stream-id> <v1> <v2> ..." lines into the hub,
// adding streams on first sight.
func ingestLines(hub *sdtw.Hub, sc *bufio.Scanner, src string) {
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	seen := map[string]bool{}
	batch := make([]float64, 0, 1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 2 {
			continue
		}
		id := fields[0]
		if !seen[id] {
			if err := hub.AddStream(id); err != nil && !errors.Is(err, sdtw.ErrDuplicateID) {
				log.Printf("%s: add stream %q: %v", src, id, err)
				continue
			}
			seen[id] = true
		}
		batch = batch[:0]
		for _, f := range fields[1:] {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				log.Printf("%s: stream %q: bad value %q", src, id, f)
				continue
			}
			batch = append(batch, v)
		}
		pushAll(hub, id, batch)
	}
	if err := sc.Err(); err != nil {
		log.Printf("%s: %v", src, err)
	}
}

// serveTCP accepts line-batch producers until SIGINT.
func serveTCP(hub *sdtw.Hub, addr string) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("listening on %s — send lines '<stream-id> <v1> <v2> ...'; SIGINT to flush\n", ln.Addr())
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	go func() {
		<-stop
		ln.Close()
	}()
	var wg sync.WaitGroup
	for {
		conn, err := ln.Accept()
		if err != nil {
			break // listener closed by SIGINT
		}
		wg.Add(1)
		go func(conn net.Conn) {
			defer wg.Done()
			defer conn.Close()
			ingestLines(hub, bufio.NewScanner(conn), conn.RemoteAddr().String())
		}(conn)
	}
	wg.Wait()
}
