// Quickstart: compute an exact DTW distance, then the same distance under
// sDTW's locally relevant constraints, and inspect what the constraints
// bought — the fraction of the DTW grid pruned and the estimation error.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"sdtw"
)

func main() {
	// Two synthetic series: a smooth two-feature profile and a warped,
	// noisy copy of it — the regime DTW (and sDTW) is built for.
	rng := rand.New(rand.NewSource(1))
	n := 256
	x := make([]float64, n)
	for i := range x {
		t := float64(i) / float64(n)
		x[i] = gauss(t, 0.3, 0.04) - 0.7*gauss(t, 0.65, 0.08) + 0.02*rng.NormFloat64()
	}
	y := make([]float64, n)
	for i := range y {
		// The copy runs on a locally stretched clock: features shift.
		t := float64(i) / float64(n)
		warped := t + 0.08*math.Sin(2*math.Pi*t)
		y[i] = gauss(warped, 0.3, 0.04) - 0.7*gauss(warped, 0.65, 0.08) + 0.02*rng.NormFloat64()
	}

	// Exact DTW: the O(N·M) reference.
	exact, err := sdtw.DTW(x, y)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact DTW distance:         %.6f\n", exact)

	// sDTW with the paper's headline configuration: adaptive core &
	// adaptive width constraints derived from salient feature alignments.
	res, err := sdtw.Distance(x, y, sdtw.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sDTW (ac,aw) estimate:      %.6f\n", res.Distance)
	fmt.Printf("grid cells filled:          %d of %d (%.1f%% pruned)\n",
		res.CellsFilled, res.GridCells, 100*res.CellsGain())
	fmt.Printf("consistent salient pairs:   %d\n", res.Pairs)
	if exact > 0 {
		fmt.Printf("relative over-estimation:   %.2f%%\n", 100*(res.Distance-exact)/exact)
	}

	// The classical alternative: a fixed Sakoe-Chiba band of equal width
	// prunes a similar share of the grid but knows nothing about the
	// series' structure.
	fixed, err := sdtw.SakoeChibaDTW(x, y, 0.10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Sakoe-Chiba (10%%) estimate: %.6f", fixed)
	if exact > 0 {
		fmt.Printf("  (over-estimation %.2f%%)", 100*(fixed-exact)/exact)
	}
	fmt.Println()

	// Engines cache salient features per series ID, so repeated
	// comparisons against the same series skip extraction.
	eng := sdtw.NewEngine(sdtw.DefaultOptions())
	sx := sdtw.NewSeries("x", 0, x)
	sy := sdtw.NewSeries("y", 0, y)
	if _, err := eng.DistanceSeries(sx, sy); err != nil {
		log.Fatal(err)
	}
	res2, err := eng.DistanceSeries(sx, sy) // cache hit: no extraction
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cached recomputation:       %.6f (extraction %v)\n", res2.Distance, res2.ExtractTime)
}

func gauss(t, c, sd float64) float64 {
	d := (t - c) / sd
	return math.Exp(-0.5 * d * d)
}
