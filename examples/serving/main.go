// Serving: run the sdtwd search service in-process and drive it as a
// client — index a collection behind the sharded HTTP surface, search
// it over JSON, mutate it while searches keep flowing, and drain it
// gracefully the way SIGTERM does in production.
//
// The service shards the collection by hashing series IDs, fans every
// search out across the shards under one shared best-so-far threshold
// (so pruning compounds across shards exactly as it does across workers
// inside one search), and serves reads from copy-on-write snapshots —
// an Add or Remove never blocks a search. Results are bit-identical to
// a single unsharded Index over the same collection.
//
// Run with:
//
//	go run ./examples/serving
//
// For the standalone daemon, see cmd/sdtwd.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"time"

	"sdtw"
	"sdtw/internal/serve"
)

func main() {
	// A 4-way sharded index over the Trace workload. Hash routing needs
	// nothing configured: series IDs decide the shard.
	data := sdtw.TraceDataset(sdtw.DatasetConfig{Seed: 7, SeriesPerClass: 8})
	ix, err := sdtw.NewShardedIndex(data.Series, 4, sdtw.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collection: %d series across %d shards, sizes %v\n\n",
		ix.Len(), ix.Shards(), ix.ShardSizes())

	// The serving layer: admission control (at most 8 searches in flight,
	// a bounded queue behind them, 429 beyond that) over the sharded
	// index. srv.Run is exactly what cmd/sdtwd wraps behind flags.
	srv := serve.New(ix, serve.Config{MaxInflight: 8})
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- srv.Run(ctx, "127.0.0.1:0", 10*time.Second, ready) }()
	base := "http://" + <-ready
	fmt.Printf("serving on %s\n\n", base)

	post := func(path string, body any) map[string]any {
		b, _ := json.Marshal(body)
		resp, err := http.Post(base+path, "application/json", bytes.NewReader(b))
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			log.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("%s: %d: %v", path, resp.StatusCode, out["error"])
		}
		return out
	}

	// A top-5 search over HTTP. The ID excludes the query's own indexed
	// copy; the response carries the cascade's work accounting alongside
	// the hits.
	q := data.Series[0]
	out := post("/v1/search", serve.SearchRequest{ID: q.ID, Values: q.Values, K: 5})
	fmt.Printf("top-5 for %s (class %d):\n", q.ID, q.Label)
	for _, h := range out["hits"].([]any) {
		hit := h.(map[string]any)
		fmt.Printf("  %-12s label=%v distance=%.3f\n", hit["id"], hit["label"], hit["distance"])
	}
	stats := out["stats"].(map[string]any)
	fmt.Printf("cascade: %v candidates, %.0f%% pruned before any DTW, %.2fms\n\n",
		stats["candidates"], 100*stats["prune_rate"].(float64), stats["wall_ms"])

	// Mutations go through the same surface and never block searches:
	// each Add/Remove publishes a fresh copy-on-write shard snapshot.
	post("/v1/add", serve.AddRequest{ID: "probe", Label: 99, Values: q.Values})
	out = post("/v1/search", serve.SearchRequest{ID: q.ID, Values: q.Values, K: 1})
	nearest := out["hits"].([]any)[0].(map[string]any)
	fmt.Printf("after add: nearest is %v at distance %v\n", nearest["id"], nearest["distance"])
	post("/v1/remove", serve.RemoveRequest{ID: "probe"})

	// Graceful drain: what SIGTERM triggers in cmd/sdtwd. The listener
	// closes, /healthz flips to 503 for the load balancer, in-flight
	// searches finish, then Run returns.
	cancel()
	if err := <-done; err != nil {
		log.Fatal(err)
	}
	fmt.Println("drained cleanly")
}
