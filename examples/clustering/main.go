// Clustering: group the Trace workload by k-medoids over pairwise DTW
// distances — once with exact DTW and once with sDTW constraints — and
// compare cluster quality (purity against ground-truth classes,
// silhouette) and the grid work each needed.
//
// Run with:
//
//	go run ./examples/clustering
package main

import (
	"fmt"
	"log"

	"sdtw"
)

func main() {
	data := sdtw.TraceDataset(sdtw.DatasetConfig{Seed: 13, SeriesPerClass: 8})
	fmt.Printf("workload: %s — %d series, length %d, %d true classes\n\n",
		data.Name, data.Len(), data.Length, data.NumClasses)

	configs := []struct {
		name string
		opts sdtw.Options
	}{
		{"exact DTW", sdtw.Options{Strategy: sdtw.FullGrid}},
		{"sDTW (ac,aw)", sdtw.DefaultOptions()},
		{"sDTW (ac2,aw)", sdtw.Options{Strategy: sdtw.AdaptiveCoreAdaptiveWidthAvg}},
		{"Sakoe 10%", sdtw.Options{Strategy: sdtw.FixedCoreFixedWidth, WidthFrac: 0.10}},
	}

	k := data.NumClasses
	fmt.Printf("%-14s %8s %12s %10s\n", "distances", "purity", "silhouette", "cost")
	for _, cfg := range configs {
		c, err := sdtw.Cluster(data.Series, k, cfg.opts)
		if err != nil {
			log.Fatalf("%s: %v", cfg.name, err)
		}
		purity, err := sdtw.ClusterPurity(c, data.Series)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %8.3f %12.3f %10.4f\n", cfg.name, purity, c.Silhouette, c.Cost)
	}

	// Show the medoids one clustering picked: each should be a
	// representative of one true class.
	c, err := sdtw.Cluster(data.Series, k, sdtw.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsDTW medoids (cluster centres):")
	for ci, m := range c.Medoids {
		sizes := 0
		for _, a := range c.Assign {
			if a == ci {
				sizes++
			}
		}
		fmt.Printf("  cluster %d: %s (true class %d), %d members\n",
			ci, data.Series[m].ID, data.Series[m].Label, sizes)
	}
}
