// Multires: the reduced-representation family (PAA, FastDTW) next to
// sDTW, and their combination — refining a multi-resolution projection
// only inside the salient-feature band — which the paper points to as the
// natural way to stack the two orthogonal speed-ups.
//
// Run with:
//
//	go run ./examples/multires
package main

import (
	"fmt"
	"log"

	"sdtw"
)

func main() {
	// A longer workload makes the multi-resolution behaviour visible.
	data := sdtw.TraceDataset(sdtw.DatasetConfig{Seed: 3, SeriesPerClass: 1, Length: 1200})
	x := data.Series[0].Values
	y := data.Series[1].Values
	full := len(x) * len(y)

	exact, err := sdtw.DTW(x, y)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("series length %d; full grid %d cells; exact DTW = %.5f\n\n", len(x), full, exact)
	fmt.Printf("%-22s %12s %12s %10s\n", "method", "distance", "cells", "vs grid")

	report := func(name string, d float64, cells int) {
		fmt.Printf("%-22s %12.5f %12d %9.1f%%\n", name, d, cells, 100*float64(cells)/float64(full))
	}

	// PAA alone: compare at 1/8 resolution (cheap, crude).
	px := sdtw.PAA(x, 8)
	py := sdtw.PAA(y, 8)
	coarse, err := sdtw.DTW(px, py)
	if err != nil {
		log.Fatal(err)
	}
	report("PAA/8 + exact DTW", coarse*8, len(px)*len(py)) // ×8: window-sum scaling

	// FastDTW: coarse-to-fine projection.
	for _, radius := range []int{1, 4} {
		res, err := sdtw.FastDTW(x, y, radius)
		if err != nil {
			log.Fatal(err)
		}
		report(fmt.Sprintf("FastDTW r=%d (%d lvls)", radius, res.Levels), res.Distance, res.Cells)
	}

	// sDTW alone.
	res, err := sdtw.Distance(x, y, sdtw.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	report("sDTW (ac,aw)", res.Distance, res.CellsFilled)

	// The combination: multi-resolution projection ∩ salient band.
	comb, err := sdtw.CombinedDistance(x, y, 1, sdtw.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	report("FastDTW ∩ sDTW", comb.Distance, comb.Cells)

	fmt.Println("\nall constrained estimates are upper bounds on the exact distance;")
	fmt.Println("the combination refines only where both techniques allow the path.")
}
