// Retrieval: index a collection of time series and answer top-k queries
// under sDTW constraints, comparing the result quality and work done
// against exact DTW — the paper's §4 retrieval experiment in miniature.
//
// Run with:
//
//	go run ./examples/retrieval
package main

import (
	"fmt"
	"log"

	"sdtw"
)

func main() {
	// The Trace workload: 4 classes of instrument transients with
	// per-instance time warps (a reduced instance for a quick run).
	data := sdtw.TraceDataset(sdtw.DatasetConfig{Seed: 7, SeriesPerClass: 10})
	fmt.Printf("indexed workload: %s — %d series, length %d, %d classes\n\n",
		data.Name, data.Len(), data.Length, data.NumClasses)

	// Two indexes over the same collection: the exact full-grid DTW
	// reference and the sDTW (ac,aw) estimate. Building an index extracts
	// and caches salient features once per series (the paper's one-time
	// indexing cost).
	exactIdx, err := sdtw.NewIndex(data.Series, sdtw.Options{Strategy: sdtw.FullGrid})
	if err != nil {
		log.Fatal(err)
	}
	fastIdx, err := sdtw.NewIndex(data.Series, sdtw.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	const k = 5
	overlapSum := 0.0
	queries := []int{0, 11, 23, 35} // one per class
	for _, q := range queries {
		query := data.Series[q]
		exact, err := exactIdx.TopK(query, k)
		if err != nil {
			log.Fatal(err)
		}
		fast, err := fastIdx.TopK(query, k)
		if err != nil {
			log.Fatal(err)
		}

		exactSet := make(map[int]bool, k)
		for _, nb := range exact {
			exactSet[nb.Pos] = true
		}
		hits := 0
		for _, nb := range fast {
			if exactSet[nb.Pos] {
				hits++
			}
		}
		overlap := float64(hits) / float64(k)
		overlapSum += overlap

		fmt.Printf("query %s (class %d): top-%d overlap with exact DTW = %.2f\n",
			query.ID, query.Label, k, overlap)
		for rank := 0; rank < k; rank++ {
			e, f := exact[rank], fast[rank]
			fmt.Printf("   #%d  exact: %-14s d=%.4f   sdtw: %-14s d=%.4f\n",
				rank+1,
				data.Series[e.Pos].ID, e.Distance,
				data.Series[f.Pos].ID, f.Distance)
		}
	}
	fmt.Printf("\nmean top-%d retrieval accuracy (accret): %.3f\n", k, overlapSum/float64(len(queries)))

	// The work saved per comparison, on one representative pair.
	res, err := fastIdx.Engine().DistanceSeries(data.Series[0], data.Series[1])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("per-comparison pruning: %d of %d grid cells filled (%.1f%% saved)\n",
		res.CellsFilled, res.GridCells, 100*res.CellsGain())
}
