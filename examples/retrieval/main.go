// Retrieval: index a collection of time series and answer top-k queries
// under sDTW constraints, comparing the result quality and work done
// against exact DTW — the paper's §4 retrieval experiment in miniature.
//
// Building the index pays the one-time costs (salient feature extraction
// and LB_Keogh envelopes); each query then runs a lower-bound cascade:
// candidates ordered by the cheap LB_Kim bound are discarded against the
// best-so-far k-th distance — first by LB_Kim, then by envelope LB_Keogh
// — and only the survivors reach the sDTW pipeline, fanned out across a
// worker pool. The SearchStats record reports how far each candidate got.
//
// Run with:
//
//	go run ./examples/retrieval
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"sdtw"
)

func main() {
	// The Trace workload: 4 classes of instrument transients with
	// per-instance time warps (a reduced instance for a quick run).
	data := sdtw.TraceDataset(sdtw.DatasetConfig{Seed: 7, SeriesPerClass: 10})
	fmt.Printf("indexed workload: %s — %d series, length %d, %d classes\n\n",
		data.Name, data.Len(), data.Length, data.NumClasses)

	// Two indexes over the same collection: the exact full-grid DTW
	// reference and the sDTW (ac,aw) estimate. Building an index extracts
	// and caches salient features once per series (the paper's one-time
	// indexing cost).
	exactIdx, err := sdtw.NewIndex(data.Series, sdtw.Options{Strategy: sdtw.FullGrid})
	if err != nil {
		log.Fatal(err)
	}
	fastIdx, err := sdtw.NewIndex(data.Series, sdtw.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	const k = 5
	ctx := context.Background()
	overlapSum := 0.0
	var cascade sdtw.SearchStats
	queries := []int{0, 11, 23, 35} // one per class
	for _, q := range queries {
		query := data.Series[q]
		exact, _, err := exactIdx.Search(ctx, query, sdtw.WithK(k))
		if err != nil {
			log.Fatal(err)
		}
		fast, stats, err := fastIdx.Search(ctx, query, sdtw.WithK(k))
		if err != nil {
			log.Fatal(err)
		}
		cascade = stats

		exactSet := make(map[int]bool, k)
		for _, nb := range exact {
			exactSet[nb.Pos] = true
		}
		hits := 0
		for _, nb := range fast {
			if exactSet[nb.Pos] {
				hits++
			}
		}
		overlap := float64(hits) / float64(k)
		overlapSum += overlap

		fmt.Printf("query %s (class %d): top-%d overlap with exact DTW = %.2f\n",
			query.ID, query.Label, k, overlap)
		for rank := 0; rank < k; rank++ {
			e, f := exact[rank], fast[rank]
			fmt.Printf("   #%d  exact: %-14s d=%.4f   sdtw: %-14s d=%.4f\n",
				rank+1,
				data.Series[e.Pos].ID, e.Distance,
				data.Series[f.Pos].ID, f.Distance)
		}
	}
	fmt.Printf("\nmean top-%d retrieval accuracy (accret): %.3f\n", k, overlapSum/float64(len(queries)))

	// The work the last query's cascade avoided: candidates discarded by
	// LB_Kim and LB_Keogh never touched the DTW grid, and the survivors
	// ran an early-abandoning DP that stops once the partial cost exceeds
	// the k-th best distance.
	fmt.Printf("cascade on the last query: %d candidates, %d pruned by LB_Kim, %d by LB_Keogh, %d evaluated (%d abandoned mid-grid)\n",
		cascade.Candidates, cascade.PrunedKim, cascade.PrunedKeogh, cascade.Evaluated, cascade.AbandonedDTW)
	fmt.Printf("DP work avoided: %d of %d grid cells filled (%.1f%% saved, bounds+band+abandonment combined; %d cells saved by abandonment alone)\n",
		cascade.Cells, cascade.GridCells, 100*cascade.CellsGain(), cascade.CellsSaved)

	// Whole-dataset workloads batch through the same cascade: classify
	// every indexed series leave-one-out in one call.
	labels, batch, err := fastIdx.LabelsAll(ctx, sdtw.WithK(3))
	if err != nil {
		log.Fatal(err)
	}
	correct := 0
	for i, ls := range labels {
		for _, l := range ls {
			if l == data.Series[i].Label {
				correct++
				break
			}
		}
	}
	fmt.Printf("\nleave-one-out 3-NN over the whole collection: %d/%d correct, %.1f%% of candidates pruned, %v\n",
		correct, data.Len(), 100*batch.PruneRate(), batch.WallTime.Round(time.Millisecond))
}
